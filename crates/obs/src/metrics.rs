//! Aggregation: mergeable counters, histograms and occupancy timelines
//! built from the event stream.

use std::collections::HashMap;

use gencache_program::Time;
use serde::{Deserialize, Serialize};

use crate::event::{CacheEvent, Region};
use crate::hist::Log2Histogram;
use crate::observer::Observer;

/// How many evicted-then-remissed traces a report keeps.
pub const TOP_CHURN: usize = 20;

/// Aggregated per-region counters and distributions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionMetrics {
    /// New traces inserted into this region.
    pub inserts: u64,
    /// Bytes of new traces inserted.
    pub insert_bytes: u64,
    /// Accesses satisfied by this region.
    pub hits: u64,
    /// Entries evicted by the replacement policy.
    pub capacity_evictions: u64,
    /// Entries deleted because their source memory was unmapped.
    pub unmap_evictions: u64,
    /// Entries removed by whole-cache flushes.
    pub flush_evictions: u64,
    /// Entries discarded by management decisions.
    pub discards: u64,
    /// Bytes removed from this region for any cause.
    pub evicted_bytes: u64,
    /// Traces promoted *into* this region.
    pub promotions_in: u64,
    /// Traces promoted *out of* this region.
    pub promotions_out: u64,
    /// Replacement-pointer resets forced by protected entries.
    pub pointer_resets: u64,
    /// Pin operations.
    pub pins: u64,
    /// Unpin operations.
    pub unpins: u64,
    /// Resident bytes at the end of the replay.
    pub resident_bytes: u64,
    /// High-water mark of resident bytes.
    pub peak_resident_bytes: u64,
    /// Trace lifetime at removal (µs from first insertion).
    pub lifetime_us: Log2Histogram,
    /// Reuse interval of hits (µs since the previous access).
    pub reuse_us: Log2Histogram,
    /// Size of inserted traces (bytes).
    pub trace_bytes: Log2Histogram,
    /// Idle time at removal (µs since the last access).
    pub evict_idle_us: Log2Histogram,
}

impl RegionMetrics {
    fn merge(&mut self, other: &RegionMetrics) {
        self.inserts += other.inserts;
        self.insert_bytes += other.insert_bytes;
        self.hits += other.hits;
        self.capacity_evictions += other.capacity_evictions;
        self.unmap_evictions += other.unmap_evictions;
        self.flush_evictions += other.flush_evictions;
        self.discards += other.discards;
        self.evicted_bytes += other.evicted_bytes;
        self.promotions_in += other.promotions_in;
        self.promotions_out += other.promotions_out;
        self.pointer_resets += other.pointer_resets;
        self.pins += other.pins;
        self.unpins += other.unpins;
        self.resident_bytes += other.resident_bytes;
        self.peak_resident_bytes = self.peak_resident_bytes.max(other.peak_resident_bytes);
        self.lifetime_us.merge(&other.lifetime_us);
        self.reuse_us.merge(&other.reuse_us);
        self.trace_bytes.merge(&other.trace_bytes);
        self.evict_idle_us.merge(&other.evict_idle_us);
    }
}

/// One point of the occupancy/miss-rate timeline, taken every
/// `sample_every` accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineSample {
    /// Accesses processed when the sample was taken.
    pub accesses: u64,
    /// Simulated time of the access that triggered the sample.
    pub time: Time,
    /// Resident bytes per region, indexed by [`Region::index`].
    pub resident: [u64; 4],
    /// Cumulative hits at the sample point.
    pub hits: u64,
    /// Cumulative misses at the sample point.
    pub misses: u64,
}

/// A trace that was evicted and then missed again — wasted regeneration
/// work, the churn signature of a thrashing cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEntry {
    /// The trace's raw id.
    pub trace: u64,
    /// Trace body size in bytes.
    pub bytes: u32,
    /// Times the trace was evicted from the hierarchy.
    pub evictions: u64,
    /// Misses on the trace *after* it had been evicted at least once.
    pub remisses: u64,
}

/// The serializable end product of a [`MetricsObserver`] run.
///
/// Reports merge associatively; shard reports folded in input-index
/// order produce byte-identical JSON for any worker count.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Total accesses observed.
    pub accesses: u64,
    /// Total hits.
    pub hits: u64,
    /// Total misses.
    pub misses: u64,
    /// Per-region aggregates, indexed by [`Region::index`].
    pub regions: Vec<RegionMetrics>,
    /// Occupancy/miss-rate samples in emission order; merged reports
    /// concatenate shard timelines in merge order.
    pub timeline: Vec<TimelineSample>,
    /// The worst evicted-then-remissed traces, sorted by remisses
    /// (then evictions, then id), truncated to [`TOP_CHURN`].
    pub top_churn: Vec<ChurnEntry>,
}

impl MetricsReport {
    /// An empty report with all four region slots present.
    pub fn new() -> Self {
        MetricsReport {
            regions: vec![RegionMetrics::default(); 4],
            ..MetricsReport::default()
        }
    }

    /// The overall miss rate, or 0 for an empty report.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// The aggregate for one region.
    pub fn region(&self, region: Region) -> &RegionMetrics {
        &self.regions[region.index()]
    }

    /// Folds `other` into `self`. Counters and histograms add exactly;
    /// timelines concatenate; churn tables combine by trace id and
    /// re-truncate. Merging shard reports in input-index order is
    /// deterministic for any job count.
    pub fn merge(&mut self, other: &MetricsReport) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        if self.regions.len() < other.regions.len() {
            self.regions
                .resize(other.regions.len(), RegionMetrics::default());
        }
        for (mine, theirs) in self.regions.iter_mut().zip(&other.regions) {
            mine.merge(theirs);
        }
        self.timeline.extend_from_slice(&other.timeline);
        let mut by_trace: HashMap<u64, ChurnEntry> = HashMap::new();
        for e in self.top_churn.iter().chain(&other.top_churn) {
            by_trace
                .entry(e.trace)
                .and_modify(|m| {
                    m.evictions += e.evictions;
                    m.remisses += e.remisses;
                })
                .or_insert(*e);
        }
        self.top_churn = sort_churn(by_trace.into_values().collect());
    }
}

/// Sorts churn entries by (remisses desc, evictions desc, trace asc)
/// and keeps the top [`TOP_CHURN`].
pub(crate) fn sort_churn(mut entries: Vec<ChurnEntry>) -> Vec<ChurnEntry> {
    entries.sort_by(|a, b| {
        b.remisses
            .cmp(&a.remisses)
            .then(b.evictions.cmp(&a.evictions))
            .then(a.trace.cmp(&b.trace))
    });
    entries.truncate(TOP_CHURN);
    entries
}

#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ChurnState {
    pub(crate) bytes: u32,
    pub(crate) evictions: u64,
    pub(crate) remisses: u64,
}

/// An [`Observer`] that aggregates the event stream into a
/// [`MetricsReport`]: counters, log2 histograms, an occupancy timeline
/// and an eviction-churn table.
#[derive(Debug, Clone)]
pub struct MetricsObserver {
    /// Take a timeline sample every this many accesses (0 = never).
    sample_every: u64,
    accesses: u64,
    hits: u64,
    misses: u64,
    regions: Vec<RegionMetrics>,
    timeline: Vec<TimelineSample>,
    churn: HashMap<u64, ChurnState>,
}

impl Default for MetricsObserver {
    fn default() -> Self {
        MetricsObserver::new()
    }
}

impl MetricsObserver {
    /// An aggregator without timeline sampling.
    pub fn new() -> Self {
        MetricsObserver::with_timeline(0)
    }

    /// An aggregator sampling the occupancy timeline every
    /// `sample_every` accesses (0 disables sampling). Sampling is
    /// keyed on event counts, not wall clock, so it is deterministic.
    pub fn with_timeline(sample_every: u64) -> Self {
        MetricsObserver {
            sample_every,
            accesses: 0,
            hits: 0,
            misses: 0,
            regions: vec![RegionMetrics::default(); 4],
            timeline: Vec::new(),
            churn: HashMap::new(),
        }
    }

    /// Builds the serializable report from everything observed so far.
    pub fn report(&self) -> MetricsReport {
        let churn = self
            .churn
            .iter()
            .filter(|(_, s)| s.remisses > 0)
            .map(|(&trace, s)| ChurnEntry {
                trace,
                bytes: s.bytes,
                evictions: s.evictions,
                remisses: s.remisses,
            })
            .collect();
        MetricsReport {
            accesses: self.accesses,
            hits: self.hits,
            misses: self.misses,
            regions: self.regions.clone(),
            timeline: self.timeline.clone(),
            top_churn: sort_churn(churn),
        }
    }

    fn on_access(&mut self, time: Time) {
        self.accesses += 1;
        if self.sample_every > 0 && self.accesses.is_multiple_of(self.sample_every) {
            let mut resident = [0u64; 4];
            for (slot, r) in resident.iter_mut().zip(&self.regions) {
                *slot = r.resident_bytes;
            }
            self.timeline.push(TimelineSample {
                accesses: self.accesses,
                time,
                resident,
                hits: self.hits,
                misses: self.misses,
            });
        }
    }

    fn region_mut(&mut self, region: Region) -> &mut RegionMetrics {
        &mut self.regions[region.index()]
    }
}

impl Observer for MetricsObserver {
    fn on_event(&mut self, event: &CacheEvent) {
        match *event {
            CacheEvent::Insert {
                region,
                trace,
                bytes,
                time,
                ..
            } => {
                let r = self.region_mut(region);
                r.inserts += 1;
                r.insert_bytes += u64::from(bytes);
                r.trace_bytes.record(u64::from(bytes));
                r.resident_bytes += u64::from(bytes);
                r.peak_resident_bytes = r.peak_resident_bytes.max(r.resident_bytes);
                self.churn
                    .entry(trace.as_u64())
                    .or_insert_with(|| ChurnState {
                        bytes,
                        ..ChurnState::default()
                    });
                let _ = time;
            }
            CacheEvent::Hit {
                region,
                reuse_us,
                time,
                ..
            } => {
                self.hits += 1;
                let r = self.region_mut(region);
                r.hits += 1;
                r.reuse_us.record(reuse_us);
                self.on_access(time);
            }
            CacheEvent::Miss { trace, time, .. } => {
                self.misses += 1;
                if let Some(state) = self.churn.get_mut(&trace.as_u64()) {
                    if state.evictions > 0 {
                        state.remisses += 1;
                    }
                }
                self.on_access(time);
            }
            CacheEvent::Evict {
                region,
                trace,
                bytes,
                cause,
                age_us,
                idle_us,
                ..
            } => {
                let r = self.region_mut(region);
                match cause {
                    gencache_cache::EvictionCause::Capacity => r.capacity_evictions += 1,
                    gencache_cache::EvictionCause::Unmapped => r.unmap_evictions += 1,
                    gencache_cache::EvictionCause::Flush => r.flush_evictions += 1,
                    gencache_cache::EvictionCause::Discarded
                    | gencache_cache::EvictionCause::Promoted => r.discards += 1,
                }
                r.evicted_bytes += u64::from(bytes);
                r.resident_bytes = r.resident_bytes.saturating_sub(u64::from(bytes));
                r.lifetime_us.record(age_us);
                r.evict_idle_us.record(idle_us);
                let state = self.churn.entry(trace.as_u64()).or_default();
                state.bytes = bytes;
                state.evictions += 1;
            }
            CacheEvent::Promote {
                from, to, bytes, ..
            } => {
                let bytes = u64::from(bytes);
                let source = self.region_mut(from);
                source.promotions_out += 1;
                source.resident_bytes = source.resident_bytes.saturating_sub(bytes);
                let target = self.region_mut(to);
                target.promotions_in += 1;
                target.resident_bytes += bytes;
                target.peak_resident_bytes = target.peak_resident_bytes.max(target.resident_bytes);
            }
            // Pure accounting duplicate of `Promote`, which already moved
            // the resident bytes and counted the promotion.
            CacheEvent::PromotedIn { .. } => {}
            CacheEvent::Pin { region, .. } => self.region_mut(region).pins += 1,
            CacheEvent::Unpin { region, .. } => self.region_mut(region).unpins += 1,
            // Frontend requests that changed nothing in this model; only
            // the offline trace reconstruction consumes them.
            CacheEvent::Noop { .. } => {}
            CacheEvent::PointerReset { region, resets, .. } => {
                self.region_mut(region).pointer_resets += u64::from(resets);
            }
            // Adaptive swaps are narrated by the switch report; the
            // flush they force arrives as ordinary `Evict` events.
            CacheEvent::PolicySwap { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_cache::{EvictionCause, TraceId};

    fn insert(trace: u64, bytes: u32, at: u64) -> CacheEvent {
        CacheEvent::Insert {
            region: Region::Unified,
            trace: TraceId::new(trace),
            bytes,
            used: bytes.into(),
            time: Time::from_micros(at),
        }
    }

    fn evict(trace: u64, bytes: u32, at: u64) -> CacheEvent {
        CacheEvent::Evict {
            region: Region::Unified,
            trace: TraceId::new(trace),
            bytes,
            cause: EvictionCause::Capacity,
            age_us: at,
            idle_us: 1,
            time: Time::from_micros(at),
        }
    }

    fn miss(trace: u64, at: u64) -> CacheEvent {
        CacheEvent::Miss {
            trace: TraceId::new(trace),
            bytes: 100,
            time: Time::from_micros(at),
        }
    }

    #[test]
    fn occupancy_tracks_insert_evict_promote() {
        let mut m = MetricsObserver::new();
        m.on_event(&insert(1, 100, 0));
        m.on_event(&insert(2, 50, 1));
        assert_eq!(m.report().region(Region::Unified).resident_bytes, 150);
        assert_eq!(m.report().region(Region::Unified).peak_resident_bytes, 150);
        m.on_event(&evict(1, 100, 10));
        assert_eq!(m.report().region(Region::Unified).resident_bytes, 50);
        m.on_event(&CacheEvent::Promote {
            from: Region::Unified,
            to: Region::Persistent,
            trace: TraceId::new(2),
            bytes: 50,
            time: Time::from_micros(11),
        });
        let report = m.report();
        assert_eq!(report.region(Region::Unified).resident_bytes, 0);
        assert_eq!(report.region(Region::Persistent).resident_bytes, 50);
        assert_eq!(report.region(Region::Unified).promotions_out, 1);
        assert_eq!(report.region(Region::Persistent).promotions_in, 1);
    }

    #[test]
    fn churn_counts_remisses_after_eviction() {
        let mut m = MetricsObserver::new();
        m.on_event(&miss(1, 0)); // cold miss: no churn
        m.on_event(&insert(1, 100, 0));
        m.on_event(&evict(1, 100, 5));
        m.on_event(&miss(1, 10)); // remiss
        m.on_event(&miss(1, 20)); // remiss again
        let report = m.report();
        assert_eq!(report.top_churn.len(), 1);
        assert_eq!(report.top_churn[0].trace, 1);
        assert_eq!(report.top_churn[0].evictions, 1);
        assert_eq!(report.top_churn[0].remisses, 2);
        assert_eq!(report.misses, 3);
    }

    #[test]
    fn timeline_samples_every_n_accesses() {
        let mut m = MetricsObserver::with_timeline(2);
        for i in 0..6 {
            m.on_event(&miss(i, i));
        }
        let report = m.report();
        assert_eq!(report.timeline.len(), 3);
        assert_eq!(report.timeline[0].accesses, 2);
        assert_eq!(report.timeline[2].misses, 6);
    }

    #[test]
    fn merged_reports_equal_serial() {
        let events_a: Vec<CacheEvent> =
            vec![miss(1, 0), insert(1, 100, 0), evict(1, 100, 3), miss(1, 5)];
        let events_b: Vec<CacheEvent> = vec![miss(2, 0), insert(2, 40, 0)];
        // Serial: per-stream reports folded in order.
        let report_of = |events: &[CacheEvent]| {
            let mut m = MetricsObserver::with_timeline(1);
            for e in events {
                m.on_event(e);
            }
            m.report()
        };
        let mut folded = MetricsReport::new();
        folded.merge(&report_of(&events_a));
        folded.merge(&report_of(&events_b));
        let mut folded_again = MetricsReport::new();
        folded_again.merge(&report_of(&events_a));
        folded_again.merge(&report_of(&events_b));
        assert_eq!(
            serde_json::to_string(&folded).unwrap(),
            serde_json::to_string(&folded_again).unwrap()
        );
        assert_eq!(folded.accesses, 3);
        assert_eq!(folded.timeline.len(), 3);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut m = MetricsObserver::with_timeline(1);
        m.on_event(&miss(9, 0));
        m.on_event(&insert(9, 64, 1));
        let report = m.report();
        let json = serde_json::to_string(&report).unwrap();
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
