//! An offline Belady-style oracle: furthest-next-use eviction over a
//! recovered frontend trace.
//!
//! Belady's MIN is optimal for uniform block sizes; with variable-size
//! traces the greedy "evict the resident trace whose next use is
//! furthest away, repeat until the newcomer fits" rule is a standard
//! lower-bound *approximation* (exact optimality for variable sizes is
//! NP-hard). The simulator prints the oracle's miss rate as a floor row
//! under the real policies: the gap between a layout and the oracle is
//! the headroom better management could still claim.
//!
//! The oracle honors the frontend semantics the real models do — unmap
//! deletions and pin windows — so its row is comparable, not merely
//! smaller: a pinned trace is never evicted, and an oversized or
//! pin-blocked insertion executes unlinked (a miss with no residency),
//! exactly like [`InsertError`](gencache_cache::InsertError) fallout in
//! the live path.

use std::collections::{BTreeSet, HashMap};

use gencache_cache::{EvictionCause, TraceId};
use gencache_program::Time;
use serde::{Deserialize, Serialize};

use crate::event::{CacheEvent, FrontendOp, Region};
use crate::simstream::{SimTrace, TraceOp};

/// Position in the op list used for "never used again": later than any
/// real index, ties broken by trace id for determinism.
const NEVER: usize = usize::MAX;

/// Clairvoyant next-use distances over a [`SimTrace`], indexed by
/// *execution position* — the count of executions (creates + accesses)
/// preceding an op, ignoring unmaps and pin toggles.
///
/// Execution positions are the bridge between the frontend trace and
/// any model's event stream: instrumented replays emit exactly one
/// [`Hit`](CacheEvent::Hit) or [`Miss`](CacheEvent::Miss) per
/// execution, in order (the `reconstruct_trace` invariant), so a
/// consumer walking an event stream can count hits and misses and look
/// up, at any point, how far away each trace's next execution is — the
/// quantity Belady's rule compares. "Never executed again" is
/// normalized to [`total`](NextUseIndex::total) so distances stay
/// finite and ties break on trace id, exactly like the oracle's own
/// eviction order.
#[derive(Debug, Clone, Default)]
pub struct NextUseIndex {
    /// `next[j]` = execution position of the next execution of the same
    /// trace as execution `j`, or `total` if there is none.
    next: Vec<usize>,
}

impl NextUseIndex {
    /// Builds the index with one backwards O(n) pass over the trace.
    pub fn build(trace: &SimTrace) -> Self {
        let ids: Vec<TraceId> = trace
            .ops
            .iter()
            .filter_map(|op| match *op {
                TraceOp::Create { id, .. } | TraceOp::Access { id, .. } => Some(id),
                _ => None,
            })
            .collect();
        let total = ids.len();
        let mut next = vec![total; total];
        let mut last_seen: HashMap<TraceId, usize> = HashMap::new();
        for j in (0..total).rev() {
            next[j] = last_seen.insert(ids[j], j).unwrap_or(total);
        }
        NextUseIndex { next }
    }

    /// Number of executions the index covers; also the normalized
    /// "never used again" position.
    pub fn total(&self) -> usize {
        self.next.len()
    }

    /// The execution position of the next execution of the same trace
    /// as execution `exec`, or [`total`](NextUseIndex::total) if the
    /// trace is never executed again.
    pub fn next_after(&self, exec: usize) -> usize {
        self.next[exec]
    }

    /// The forward distance, in executions, from execution `exec` to the
    /// next execution of the same trace (distance to end-of-trace when
    /// never executed again).
    pub fn distance_at(&self, exec: usize) -> usize {
        self.next[exec] - exec
    }
}

/// Hit/miss outcome of an oracle replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleResult {
    /// Trace executions presented (creates + accesses).
    pub accesses: u64,
    /// Executions that found their trace resident.
    pub hits: u64,
    /// Executions that required (re)generation.
    pub misses: u64,
    /// Executions whose trace could not be made resident at all
    /// (larger than the cache, or blocked by pinned entries).
    pub uncachable: u64,
    /// Traces deleted by unmaps while resident.
    pub unmap_deletions: u64,
}

impl OracleResult {
    /// Miss rate: `misses / accesses`; zero when no accesses occurred.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// One resident trace in the oracle's cache.
#[derive(Debug, Clone, Copy)]
struct Resident {
    next_use: usize,
    bytes: u32,
    pinned: bool,
}

/// Replays `trace` through a clairvoyant cache of `capacity` bytes,
/// evicting the resident trace with the furthest next use whenever an
/// insertion needs space.
pub fn oracle_replay(trace: &SimTrace, capacity: u64) -> OracleResult {
    replay_core(trace, capacity, |_| {})
}

/// [`oracle_replay`], but also materializes the oracle's decision
/// sequence as a [`CacheEvent`] stream in the single-region
/// ([`Region::Unified`]) shape the instrumented models emit: one
/// `Hit`/`Miss` per execution, capacity evictions for the
/// furthest-next-use victims, unmap deletions, pin toggles.
///
/// The stream inverts back to the frontend trace through
/// [`reconstruct_trace`](crate::reconstruct_trace) and, walked by the
/// regret scorer, carries zero Belady regret by construction — every
/// capacity victim *is* the furthest-next-use resident. Both properties
/// are tested.
pub fn oracle_replay_events(trace: &SimTrace, capacity: u64) -> (OracleResult, Vec<CacheEvent>) {
    let mut events = Vec::new();
    let result = replay_core(trace, capacity, |e| events.push(e));
    (result, events)
}

/// The oracle replay loop, parameterized over an event sink so the
/// plain summary replay pays nothing for emission.
fn replay_core(
    trace: &SimTrace,
    capacity: u64,
    mut emit: impl FnMut(CacheEvent),
) -> OracleResult {
    // Pass 1: for every op index, the index of the *next* execution of
    // the same trace (NEVER if none). Built backwards in O(n).
    let n = trace.ops.len();
    let mut next_use = vec![NEVER; n];
    let mut last_seen: HashMap<TraceId, usize> = HashMap::new();
    for i in (0..n).rev() {
        if let TraceOp::Create { id, .. } | TraceOp::Access { id, .. } = trace.ops[i] {
            next_use[i] = last_seen.insert(id, i).unwrap_or(NEVER);
        }
    }

    let mut result = OracleResult::default();
    let mut sizes: HashMap<TraceId, u32> = HashMap::new();
    let mut resident: HashMap<TraceId, Resident> = HashMap::new();
    // Eviction order: furthest next use first. Pinned entries stay in
    // the map but are skipped here (removed from the set while pinned).
    let mut by_distance: BTreeSet<(usize, TraceId)> = BTreeSet::new();
    let mut used: u64 = 0;
    // Pin toggles carry no timestamp; clock them with the preceding
    // timed op, exactly as the live replay path does.
    let mut clock = Time::ZERO;

    for (i, op) in trace.ops.iter().enumerate() {
        match *op {
            TraceOp::Create { id, time, .. } | TraceOp::Access { id, time } => {
                clock = time;
                let bytes = match trace.ops[i] {
                    TraceOp::Create { bytes, .. } => {
                        sizes.insert(id, bytes);
                        bytes
                    }
                    _ => *sizes.get(&id).expect("access precedes create"),
                };
                result.accesses += 1;
                if let Some(entry) = resident.get_mut(&id) {
                    result.hits += 1;
                    emit(CacheEvent::Hit {
                        region: Region::Unified,
                        trace: id,
                        reuse_us: 0,
                        time,
                    });
                    // Re-key the entry under its new next use.
                    if !entry.pinned {
                        by_distance.remove(&(entry.next_use, id));
                        by_distance.insert((next_use[i], id));
                    }
                    entry.next_use = next_use[i];
                    continue;
                }
                result.misses += 1;
                emit(CacheEvent::Miss {
                    trace: id,
                    bytes,
                    time,
                });
                if u64::from(bytes) > capacity {
                    result.uncachable += 1;
                    continue;
                }
                // Evict furthest-next-use entries until the newcomer fits.
                let mut evicted = Vec::new();
                while used + u64::from(bytes) > capacity {
                    match by_distance.iter().next_back().copied() {
                        Some(key) => {
                            by_distance.remove(&key);
                            let victim = resident.remove(&key.1).expect("set tracks map");
                            used -= u64::from(victim.bytes);
                            evicted.push((key.1, victim));
                        }
                        None => break, // only pinned entries remain
                    }
                }
                if used + u64::from(bytes) > capacity {
                    // Pinned entries block the insertion: restore the
                    // provisional evictions and execute unlinked.
                    for (vid, victim) in evicted {
                        used += u64::from(victim.bytes);
                        resident.insert(vid, victim);
                        by_distance.insert((victim.next_use, vid));
                    }
                    result.uncachable += 1;
                    continue;
                }
                // The insertion is final: the provisional evictions are
                // real decisions now, so they enter the stream.
                for (vid, victim) in evicted {
                    emit(CacheEvent::Evict {
                        region: Region::Unified,
                        trace: vid,
                        bytes: victim.bytes,
                        cause: EvictionCause::Capacity,
                        age_us: 0,
                        idle_us: 0,
                        time,
                    });
                }
                used += u64::from(bytes);
                resident.insert(
                    id,
                    Resident {
                        next_use: next_use[i],
                        bytes,
                        pinned: false,
                    },
                );
                by_distance.insert((next_use[i], id));
                emit(CacheEvent::Insert {
                    region: Region::Unified,
                    trace: id,
                    bytes,
                    used,
                    time,
                });
            }
            TraceOp::Invalidate { id, time } => {
                clock = time;
                if let Some(entry) = resident.remove(&id) {
                    result.unmap_deletions += 1;
                    used -= u64::from(entry.bytes);
                    if !entry.pinned {
                        by_distance.remove(&(entry.next_use, id));
                    }
                    emit(CacheEvent::Evict {
                        region: Region::Unified,
                        trace: id,
                        bytes: entry.bytes,
                        cause: EvictionCause::Unmapped,
                        age_us: 0,
                        idle_us: 0,
                        time,
                    });
                } else {
                    emit(CacheEvent::Noop {
                        op: FrontendOp::Unmap,
                        trace: id,
                        time,
                    });
                }
            }
            TraceOp::Pin { id } => {
                if let Some(entry) = resident.get_mut(&id) {
                    if !entry.pinned {
                        entry.pinned = true;
                        by_distance.remove(&(entry.next_use, id));
                        emit(CacheEvent::Pin {
                            region: Region::Unified,
                            trace: id,
                            time: clock,
                        });
                        continue;
                    }
                }
                emit(CacheEvent::Noop {
                    op: FrontendOp::Pin,
                    trace: id,
                    time: clock,
                });
            }
            TraceOp::Unpin { id } => {
                if let Some(entry) = resident.get_mut(&id) {
                    if entry.pinned {
                        entry.pinned = false;
                        by_distance.insert((entry.next_use, id));
                        emit(CacheEvent::Unpin {
                            region: Region::Unified,
                            trace: id,
                            time: clock,
                        });
                        continue;
                    }
                }
                emit(CacheEvent::Noop {
                    op: FrontendOp::Unpin,
                    trace: id,
                    time: clock,
                });
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_program::Time;

    fn create(id: u64, bytes: u32, t: u64) -> TraceOp {
        TraceOp::Create {
            id: TraceId::new(id),
            bytes,
            time: Time::from_micros(t),
        }
    }

    fn access(id: u64, t: u64) -> TraceOp {
        TraceOp::Access {
            id: TraceId::new(id),
            time: Time::from_micros(t),
        }
    }

    #[test]
    fn keeps_the_sooner_reused_trace() {
        // Cache fits two of the three traces. Trace 3 arrives while 1 is
        // about to be reused and 2 never is: the oracle evicts 2.
        let trace = SimTrace {
            ops: vec![
                create(1, 100, 0),
                create(2, 100, 1),
                create(3, 100, 2), // evicts 2 (furthest next use: never)
                access(1, 3),      // hit — 1 was kept
                access(3, 4),      // hit
            ],
        };
        let r = oracle_replay(&trace, 200);
        assert_eq!(r.accesses, 5);
        assert_eq!(r.misses, 3); // the three creations only
        assert_eq!(r.hits, 2);
    }

    #[test]
    fn lru_pattern_where_oracle_wins() {
        // Cyclic access over 3 traces in a 2-trace cache: LRU misses
        // every time; the oracle hits at least once per cycle.
        let mut ops = vec![create(0, 100, 0), create(1, 100, 1), create(2, 100, 2)];
        let mut t = 3;
        for _ in 0..5 {
            for id in 0..3 {
                ops.push(access(id, t));
                t += 1;
            }
        }
        let r = oracle_replay(&SimTrace { ops }, 200);
        assert!(r.hits >= 5, "oracle must hit once per cycle, got {r:?}");
    }

    #[test]
    fn pinned_traces_survive_pressure() {
        let trace = SimTrace {
            ops: vec![
                create(1, 150, 0),
                TraceOp::Pin {
                    id: TraceId::new(1),
                },
                create(2, 100, 1), // does not fit; 1 is pinned → unlinked
                access(1, 2),      // still a hit
                TraceOp::Unpin {
                    id: TraceId::new(1),
                },
                create(3, 100, 3), // now 1 can be evicted
            ],
        };
        let r = oracle_replay(&trace, 200);
        assert_eq!(r.uncachable, 1);
        assert_eq!(r.hits, 1);
    }

    #[test]
    fn unmap_frees_space() {
        let trace = SimTrace {
            ops: vec![
                create(1, 200, 0),
                TraceOp::Invalidate {
                    id: TraceId::new(1),
                    time: Time::from_micros(1),
                },
                create(2, 200, 2),
                access(2, 3),
            ],
        };
        let r = oracle_replay(&trace, 200);
        assert_eq!(r.unmap_deletions, 1);
        assert_eq!(r.hits, 1);
        assert_eq!(r.uncachable, 0);
    }

    #[test]
    fn oversized_trace_is_uncachable() {
        let trace = SimTrace {
            ops: vec![create(1, 300, 0), access(1, 1)],
        };
        let r = oracle_replay(&trace, 200);
        assert_eq!(r.uncachable, 2);
        assert_eq!(r.hits, 0);
    }

    #[test]
    fn next_use_index_distances() {
        // Executions: t1 t2 t1 t2 t1 (the invalidate is not an execution).
        let trace = SimTrace {
            ops: vec![
                create(1, 100, 0),
                create(2, 100, 1),
                access(1, 2),
                TraceOp::Invalidate {
                    id: TraceId::new(3),
                    time: Time::from_micros(3),
                },
                access(2, 4),
                access(1, 5),
            ],
        };
        let idx = NextUseIndex::build(&trace);
        assert_eq!(idx.total(), 5);
        assert_eq!(idx.next_after(0), 2);
        assert_eq!(idx.next_after(1), 3);
        assert_eq!(idx.next_after(2), 4);
        assert_eq!(idx.next_after(3), 5, "never again normalizes to total");
        assert_eq!(idx.next_after(4), 5);
        assert_eq!(idx.distance_at(0), 2);
        assert_eq!(idx.distance_at(3), 2);
    }

    #[test]
    fn event_stream_matches_summary_replay() {
        let mut ops = vec![create(0, 100, 0), create(1, 100, 1), create(2, 100, 2)];
        let mut t = 3;
        for _ in 0..4 {
            for id in 0..3 {
                ops.push(access(id, t));
                t += 1;
            }
        }
        ops.push(TraceOp::Invalidate {
            id: TraceId::new(0),
            time: Time::from_micros(t),
        });
        let trace = SimTrace { ops };
        let plain = oracle_replay(&trace, 200);
        let (emitted, events) = oracle_replay_events(&trace, 200);
        assert_eq!(emitted, plain, "emission must not change decisions");
        let hits = events
            .iter()
            .filter(|e| matches!(e, CacheEvent::Hit { .. }))
            .count() as u64;
        let misses = events
            .iter()
            .filter(|e| matches!(e, CacheEvent::Miss { .. }))
            .count() as u64;
        assert_eq!(hits, plain.hits);
        assert_eq!(misses, plain.misses);
    }

    #[test]
    fn event_stream_inverts_to_the_frontend_trace() {
        // The oracle's stream must satisfy the same inversion invariant
        // as the live models: reconstruct_trace recovers the frontend
        // requests exactly (sizes are distinct per id so re-creations
        // cannot be confused with accesses).
        let trace = SimTrace {
            ops: vec![
                create(1, 150, 0),
                TraceOp::Pin {
                    id: TraceId::new(1),
                },
                create(2, 100, 1), // blocked by the pin: unlinked, a Miss
                access(1, 2),
                TraceOp::Unpin {
                    id: TraceId::new(1),
                },
                create(3, 100, 3),
                TraceOp::Invalidate {
                    id: TraceId::new(3),
                    time: Time::from_micros(4),
                },
                TraceOp::Invalidate {
                    id: TraceId::new(9), // never resident: a Noop
                    time: Time::from_micros(5),
                },
            ],
        };
        let (_, events) = oracle_replay_events(&trace, 200);
        let recovered = crate::simstream::reconstruct_trace(&events).expect("invertible");
        assert_eq!(recovered, trace);
    }
}
