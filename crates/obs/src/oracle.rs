//! An offline Belady-style oracle: furthest-next-use eviction over a
//! recovered frontend trace.
//!
//! Belady's MIN is optimal for uniform block sizes; with variable-size
//! traces the greedy "evict the resident trace whose next use is
//! furthest away, repeat until the newcomer fits" rule is a standard
//! lower-bound *approximation* (exact optimality for variable sizes is
//! NP-hard). The simulator prints the oracle's miss rate as a floor row
//! under the real policies: the gap between a layout and the oracle is
//! the headroom better management could still claim.
//!
//! The oracle honors the frontend semantics the real models do — unmap
//! deletions and pin windows — so its row is comparable, not merely
//! smaller: a pinned trace is never evicted, and an oversized or
//! pin-blocked insertion executes unlinked (a miss with no residency),
//! exactly like [`InsertError`](gencache_cache::InsertError) fallout in
//! the live path.

use std::collections::{BTreeSet, HashMap};

use gencache_cache::TraceId;
use serde::{Deserialize, Serialize};

use crate::simstream::{SimTrace, TraceOp};

/// Position in the op list used for "never used again": later than any
/// real index, ties broken by trace id for determinism.
const NEVER: usize = usize::MAX;

/// Hit/miss outcome of an oracle replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleResult {
    /// Trace executions presented (creates + accesses).
    pub accesses: u64,
    /// Executions that found their trace resident.
    pub hits: u64,
    /// Executions that required (re)generation.
    pub misses: u64,
    /// Executions whose trace could not be made resident at all
    /// (larger than the cache, or blocked by pinned entries).
    pub uncachable: u64,
    /// Traces deleted by unmaps while resident.
    pub unmap_deletions: u64,
}

impl OracleResult {
    /// Miss rate: `misses / accesses`; zero when no accesses occurred.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// One resident trace in the oracle's cache.
#[derive(Debug, Clone, Copy)]
struct Resident {
    next_use: usize,
    bytes: u32,
    pinned: bool,
}

/// Replays `trace` through a clairvoyant cache of `capacity` bytes,
/// evicting the resident trace with the furthest next use whenever an
/// insertion needs space.
pub fn oracle_replay(trace: &SimTrace, capacity: u64) -> OracleResult {
    // Pass 1: for every op index, the index of the *next* execution of
    // the same trace (NEVER if none). Built backwards in O(n).
    let n = trace.ops.len();
    let mut next_use = vec![NEVER; n];
    let mut last_seen: HashMap<TraceId, usize> = HashMap::new();
    for i in (0..n).rev() {
        if let TraceOp::Create { id, .. } | TraceOp::Access { id, .. } = trace.ops[i] {
            next_use[i] = last_seen.insert(id, i).unwrap_or(NEVER);
        }
    }

    let mut result = OracleResult::default();
    let mut sizes: HashMap<TraceId, u32> = HashMap::new();
    let mut resident: HashMap<TraceId, Resident> = HashMap::new();
    // Eviction order: furthest next use first. Pinned entries stay in
    // the map but are skipped here (removed from the set while pinned).
    let mut by_distance: BTreeSet<(usize, TraceId)> = BTreeSet::new();
    let mut used: u64 = 0;

    for (i, op) in trace.ops.iter().enumerate() {
        match *op {
            TraceOp::Create { id, .. } | TraceOp::Access { id, .. } => {
                let bytes = match trace.ops[i] {
                    TraceOp::Create { bytes, .. } => {
                        sizes.insert(id, bytes);
                        bytes
                    }
                    _ => *sizes.get(&id).expect("access precedes create"),
                };
                result.accesses += 1;
                if let Some(entry) = resident.get_mut(&id) {
                    result.hits += 1;
                    // Re-key the entry under its new next use.
                    if !entry.pinned {
                        by_distance.remove(&(entry.next_use, id));
                        by_distance.insert((next_use[i], id));
                    }
                    entry.next_use = next_use[i];
                    continue;
                }
                result.misses += 1;
                if u64::from(bytes) > capacity {
                    result.uncachable += 1;
                    continue;
                }
                // Evict furthest-next-use entries until the newcomer fits.
                let mut evicted = Vec::new();
                while used + u64::from(bytes) > capacity {
                    match by_distance.iter().next_back().copied() {
                        Some(key) => {
                            by_distance.remove(&key);
                            let victim = resident.remove(&key.1).expect("set tracks map");
                            used -= u64::from(victim.bytes);
                            evicted.push((key.1, victim));
                        }
                        None => break, // only pinned entries remain
                    }
                }
                if used + u64::from(bytes) > capacity {
                    // Pinned entries block the insertion: restore the
                    // provisional evictions and execute unlinked.
                    for (vid, victim) in evicted {
                        used += u64::from(victim.bytes);
                        resident.insert(vid, victim);
                        by_distance.insert((victim.next_use, vid));
                    }
                    result.uncachable += 1;
                    continue;
                }
                used += u64::from(bytes);
                resident.insert(
                    id,
                    Resident {
                        next_use: next_use[i],
                        bytes,
                        pinned: false,
                    },
                );
                by_distance.insert((next_use[i], id));
            }
            TraceOp::Invalidate { id, .. } => {
                if let Some(entry) = resident.remove(&id) {
                    result.unmap_deletions += 1;
                    used -= u64::from(entry.bytes);
                    if !entry.pinned {
                        by_distance.remove(&(entry.next_use, id));
                    }
                }
            }
            TraceOp::Pin { id } => {
                if let Some(entry) = resident.get_mut(&id) {
                    if !entry.pinned {
                        entry.pinned = true;
                        by_distance.remove(&(entry.next_use, id));
                    }
                }
            }
            TraceOp::Unpin { id } => {
                if let Some(entry) = resident.get_mut(&id) {
                    if entry.pinned {
                        entry.pinned = false;
                        by_distance.insert((entry.next_use, id));
                    }
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_program::Time;

    fn create(id: u64, bytes: u32, t: u64) -> TraceOp {
        TraceOp::Create {
            id: TraceId::new(id),
            bytes,
            time: Time::from_micros(t),
        }
    }

    fn access(id: u64, t: u64) -> TraceOp {
        TraceOp::Access {
            id: TraceId::new(id),
            time: Time::from_micros(t),
        }
    }

    #[test]
    fn keeps_the_sooner_reused_trace() {
        // Cache fits two of the three traces. Trace 3 arrives while 1 is
        // about to be reused and 2 never is: the oracle evicts 2.
        let trace = SimTrace {
            ops: vec![
                create(1, 100, 0),
                create(2, 100, 1),
                create(3, 100, 2), // evicts 2 (furthest next use: never)
                access(1, 3),      // hit — 1 was kept
                access(3, 4),      // hit
            ],
        };
        let r = oracle_replay(&trace, 200);
        assert_eq!(r.accesses, 5);
        assert_eq!(r.misses, 3); // the three creations only
        assert_eq!(r.hits, 2);
    }

    #[test]
    fn lru_pattern_where_oracle_wins() {
        // Cyclic access over 3 traces in a 2-trace cache: LRU misses
        // every time; the oracle hits at least once per cycle.
        let mut ops = vec![create(0, 100, 0), create(1, 100, 1), create(2, 100, 2)];
        let mut t = 3;
        for _ in 0..5 {
            for id in 0..3 {
                ops.push(access(id, t));
                t += 1;
            }
        }
        let r = oracle_replay(&SimTrace { ops }, 200);
        assert!(r.hits >= 5, "oracle must hit once per cycle, got {r:?}");
    }

    #[test]
    fn pinned_traces_survive_pressure() {
        let trace = SimTrace {
            ops: vec![
                create(1, 150, 0),
                TraceOp::Pin {
                    id: TraceId::new(1),
                },
                create(2, 100, 1), // does not fit; 1 is pinned → unlinked
                access(1, 2),      // still a hit
                TraceOp::Unpin {
                    id: TraceId::new(1),
                },
                create(3, 100, 3), // now 1 can be evicted
            ],
        };
        let r = oracle_replay(&trace, 200);
        assert_eq!(r.uncachable, 1);
        assert_eq!(r.hits, 1);
    }

    #[test]
    fn unmap_frees_space() {
        let trace = SimTrace {
            ops: vec![
                create(1, 200, 0),
                TraceOp::Invalidate {
                    id: TraceId::new(1),
                    time: Time::from_micros(1),
                },
                create(2, 200, 2),
                access(2, 3),
            ],
        };
        let r = oracle_replay(&trace, 200);
        assert_eq!(r.unmap_deletions, 1);
        assert_eq!(r.hits, 1);
        assert_eq!(r.uncachable, 0);
    }

    #[test]
    fn oversized_trace_is_uncachable() {
        let trace = SimTrace {
            ops: vec![create(1, 300, 0), access(1, 1)],
        };
        let r = oracle_replay(&trace, 200);
        assert_eq!(r.uncachable, 2);
        assert_eq!(r.hits, 0);
    }
}
