//! Decision-level Belady-regret attribution: *why* a configuration
//! loses to the oracle, one eviction at a time.
//!
//! The offline oracle ([`oracle_replay`](crate::oracle_replay)) prints
//! a clairvoyant floor under every configuration, but a floor is not an
//! explanation. This module walks any recorded event stream next to the
//! [`NextUseIndex`] of its reconstructed frontend trace and scores every
//! cause-tagged [`Evict`](CacheEvent::Evict) against the choice Belady's
//! rule would have made at that instant: the **regret** of an eviction
//! is how many executions sooner the evicted trace runs again than the
//! furthest-next-use resident the policy could have evicted instead.
//! Zero regret means the decision was clairvoyantly defensible; the sum
//! of regret over a run is the decision-level account of the gap
//! between a configuration and the oracle row.
//!
//! Each regretful eviction is also tagged with its *realized* cost: the
//! evicted-then-remissed misses it caused (the same churn rule
//! [`MetricsObserver`](crate::MetricsObserver) counts — a property test
//! reconciles the two), priced through the Table 2
//! [`miss_service`](crate::cost::miss_service) formula. The result
//! aggregates into a [`RegretReport`] keyed by phase × region ×
//! eviction cause, with the same input-index-deterministic merge
//! discipline as [`MetricsReport`](crate::MetricsReport): shard reports
//! folded in input order are byte-identical for any worker count.
//!
//! Unmap deletions and whole-cache flushes are *forced* — the frontend
//! or the flush dictated the victim, no alternative existed — so they
//! score zero regret by definition, but their evictions and any
//! re-misses they cause still land in their phase × region × cause
//! cell: a flush that churns is real cost even though it was nobody's
//! decision.

use std::collections::{BTreeSet, HashMap};

use gencache_cache::{EvictionCause, TraceId};
use serde::{Deserialize, Serialize};

use crate::cost::miss_service;
use crate::event::{CacheEvent, Region};
use crate::observer::Observer;
use crate::oracle::NextUseIndex;

/// Default cap on the contributor traces a report keeps; override with
/// [`RegretObserver::with_top`] (the CLI's `--regret-top`).
pub const TOP_REGRET: usize = 20;

/// Regret aggregates for one phase × region × cause cell (and for the
/// phase- and run-level totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RegretCell {
    /// Evictions scored in this cell.
    pub evictions: u64,
    /// Evictions with positive regret (a sooner-reused trace was evicted
    /// while a further-reused victim was available).
    pub regretful: u64,
    /// Total regret, in executions: how much sooner the evicted traces
    /// run again than the best alternative victims would have.
    pub regret_sum: u64,
    /// The single worst decision's regret.
    pub max_regret: u64,
    /// Re-misses attributed to this cell's evictions (the churn rule:
    /// every miss on a trace after its most recent eviction from here).
    pub remisses: u64,
    /// Table 2 miss-service instructions those re-misses cost.
    pub remiss_instructions: f64,
}

impl RegretCell {
    fn score(&mut self, regret: u64) {
        self.evictions += 1;
        if regret > 0 {
            self.regretful += 1;
            self.regret_sum += regret;
            self.max_regret = self.max_regret.max(regret);
        }
    }

    fn remiss(&mut self, instructions: f64) {
        self.remisses += 1;
        self.remiss_instructions += instructions;
    }

    /// Folds `other` into `self`, field by field in declaration order.
    pub fn merge(&mut self, other: &RegretCell) {
        self.evictions += other.evictions;
        self.regretful += other.regretful;
        self.regret_sum += other.regret_sum;
        self.max_regret = self.max_regret.max(other.max_regret);
        self.remisses += other.remisses;
        self.remiss_instructions += other.remiss_instructions;
    }
}

/// Per-cause regret cells within one region, bucketed exactly like
/// [`RegionCost`](crate::RegionCost): management discards and
/// promotion-path deletions share the `discard` slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RegionRegret {
    /// Replacement-policy evictions — the decisions Belady judges.
    pub capacity: RegretCell,
    /// Unmapped-memory deletions (forced; always zero regret).
    pub unmapped: RegretCell,
    /// Whole-cache-flush removals (forced; always zero regret).
    pub flush: RegretCell,
    /// Management discards (failed probation, unfit promotions).
    pub discarded: RegretCell,
}

impl RegionRegret {
    fn slot_mut(&mut self, slot: usize) -> &mut RegretCell {
        match slot {
            0 => &mut self.capacity,
            1 => &mut self.unmapped,
            2 => &mut self.flush,
            _ => &mut self.discarded,
        }
    }

    fn merge(&mut self, other: &RegionRegret) {
        self.capacity.merge(&other.capacity);
        self.unmapped.merge(&other.unmapped);
        self.flush.merge(&other.flush);
        self.discarded.merge(&other.discarded);
    }

    /// The cause slices by name, in the same fixed render order as
    /// [`RegionCost::causes`](crate::RegionCost::causes).
    pub fn causes(&self) -> [(&'static str, RegretCell); 4] {
        [
            ("capacity", self.capacity),
            ("unmap", self.unmapped),
            ("flush", self.flush),
            ("discard", self.discarded),
        ]
    }
}

/// The cause bucket an eviction cause lands in, mirroring
/// [`RegionCost`](crate::RegionCost)'s four-way split.
fn cause_slot(cause: EvictionCause) -> usize {
    match cause {
        EvictionCause::Capacity => 0,
        EvictionCause::Unmapped => 1,
        EvictionCause::Flush => 2,
        EvictionCause::Discarded | EvictionCause::Promoted => 3,
    }
}

fn cause_name(slot: usize) -> &'static str {
    match slot {
        0 => "capacity",
        1 => "unmap",
        2 => "flush",
        _ => "discard",
    }
}

/// Whether the cause dictated the victim (no alternative existed, so
/// Belady regret is zero by definition).
fn forced(cause: EvictionCause) -> bool {
    matches!(cause, EvictionCause::Unmapped | EvictionCause::Flush)
}

/// Regret attributed to one workload phase: the phase-local total plus
/// its per-region × per-cause decomposition.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseRegret {
    /// Everything scored in this phase.
    pub total: RegretCell,
    /// Region × cause attribution, indexed by [`Region::index`].
    pub regions: Vec<RegionRegret>,
}

impl PhaseRegret {
    fn new() -> Self {
        PhaseRegret {
            total: RegretCell::default(),
            regions: vec![RegionRegret::default(); 4],
        }
    }

    fn merge(&mut self, other: &PhaseRegret) {
        self.total.merge(&other.total);
        if self.regions.len() < other.regions.len() {
            self.regions
                .resize(other.regions.len(), RegionRegret::default());
        }
        for (mine, theirs) in self.regions.iter_mut().zip(&other.regions) {
            mine.merge(theirs);
        }
    }
}

/// The single worst (highest-regret) eviction of a contributor trace —
/// everything a trace-grounded narrative needs to name the decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorstEviction {
    /// Execution position of the decision (executions consumed before
    /// it).
    pub exec: u64,
    /// Phase the eviction fell in.
    pub phase: u32,
    /// Region the trace was evicted from, by name.
    pub region: String,
    /// Cause bucket, by name (`capacity` / `unmap` / `flush` /
    /// `discard`).
    pub cause: String,
    /// Executions until the evicted trace ran again (distance to end of
    /// run when it never did).
    pub next_use: u64,
    /// Whether the evicted trace was ever executed again.
    pub reused: bool,
    /// The furthest-next-use resident the policy could have evicted
    /// instead (the evicted trace's own id when no alternative existed).
    pub victim: u64,
    /// Executions until that alternative victim ran again.
    pub victim_next_use: u64,
    /// Whether the alternative victim was ever executed again.
    pub victim_reused: bool,
    /// `victim_next_use - next_use` when positive: how much sooner the
    /// evicted trace was needed than the Belady choice.
    pub regret: u64,
}

/// One trace's aggregate contribution to a run's regret, plus its worst
/// single decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegretContributor {
    /// The trace's raw id.
    pub trace: u64,
    /// Trace body size in bytes (as of its last eviction).
    pub bytes: u32,
    /// Times the trace was evicted from the hierarchy.
    pub evictions: u64,
    /// Total regret across those evictions, in executions.
    pub regret_sum: u64,
    /// Misses on the trace after it had been evicted at least once.
    pub remisses: u64,
    /// Table 2 miss-service instructions those re-misses cost.
    pub remiss_instructions: f64,
    /// The highest-regret eviction of this trace.
    pub worst: WorstEviction,
}

/// The serializable end product of a [`RegretObserver`] walk: the
/// decision-level account of one configuration's distance from the
/// Belady oracle.
///
/// Reports merge associatively; shard reports folded in input-index
/// order produce byte-identical JSON for any worker count.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegretReport {
    /// Executions walked (hits + misses), for context and alignment
    /// validation.
    pub accesses: u64,
    /// The contributor-table truncation cap this report was built with
    /// ([`TOP_REGRET`] unless overridden by `--regret-top`). Kept in the
    /// document so merged reports know the honest cap.
    pub top: u64,
    /// Run-wide regret aggregates.
    pub total: RegretCell,
    /// Per-phase attribution, in phase order.
    pub phases: Vec<PhaseRegret>,
    /// The worst contributor traces, sorted by (regret desc, remisses
    /// desc, trace asc), truncated to the report's `top` cap.
    pub contributors: Vec<RegretContributor>,
}

impl RegretReport {
    /// An empty report with `phases` phase slots present.
    pub fn new(phases: usize) -> Self {
        RegretReport {
            top: TOP_REGRET as u64,
            phases: (0..phases.max(1)).map(|_| PhaseRegret::new()).collect(),
            ..RegretReport::default()
        }
    }

    /// Folds `other` into `self`: cells add field-by-field, phases
    /// combine by index (growing to the longer list), contributor tables
    /// combine by trace id and re-truncate. Merging in input-index order
    /// is deterministic for any job count.
    pub fn merge(&mut self, other: &RegretReport) {
        self.accesses += other.accesses;
        // Honest cap after a merge: the larger of the two inputs'
        // (a default-constructed accumulator starts at 0).
        self.top = self.top.max(other.top);
        self.total.merge(&other.total);
        if self.phases.len() < other.phases.len() {
            self.phases.resize(other.phases.len(), PhaseRegret::new());
        }
        for (mine, theirs) in self.phases.iter_mut().zip(&other.phases) {
            mine.merge(theirs);
        }
        let mut by_trace: HashMap<u64, RegretContributor> = HashMap::new();
        for e in self.contributors.iter().chain(&other.contributors) {
            by_trace
                .entry(e.trace)
                .and_modify(|m| {
                    m.evictions += e.evictions;
                    m.regret_sum += e.regret_sum;
                    m.remisses += e.remisses;
                    m.remiss_instructions += e.remiss_instructions;
                    if e.worst.regret > m.worst.regret {
                        m.worst = e.worst.clone();
                        m.bytes = e.bytes;
                    }
                })
                .or_insert_with(|| e.clone());
        }
        self.contributors =
            sort_contributors(by_trace.into_values().collect(), self.top as usize);
    }
}

/// Sorts contributors by (regret desc, remisses desc, trace asc) and
/// keeps the top `top`.
fn sort_contributors(mut entries: Vec<RegretContributor>, top: usize) -> Vec<RegretContributor> {
    entries.sort_by(|a, b| {
        b.regret_sum
            .cmp(&a.regret_sum)
            .then(b.remisses.cmp(&a.remisses))
            .then(a.trace.cmp(&b.trace))
    });
    entries.truncate(top);
    entries
}

/// Per-trace walker state: aggregates plus the attribution target of the
/// trace's most recent eviction (where its future re-misses are charged).
#[derive(Debug, Clone)]
struct TraceRegret {
    bytes: u32,
    evictions: u64,
    regret_sum: u64,
    remisses: u64,
    remiss_instructions: f64,
    last: (usize, usize, usize), // (phase, region index, cause slot)
    worst: WorstEviction,
}

#[derive(Debug, Clone, Copy)]
struct ResidentState {
    next: usize,
    pinned: bool,
}

/// An [`Observer`] that scores every eviction in an event stream against
/// the clairvoyant alternative.
///
/// The walker leans on the `reconstruct_trace` invariant: instrumented
/// replays emit exactly one [`Hit`](CacheEvent::Hit) or
/// [`Miss`](CacheEvent::Miss) per execution, in frontend order, so
/// counting them aligns the stream with the [`NextUseIndex`] built over
/// the reconstructed trace. From there it mirrors the oracle's own
/// bookkeeping — a furthest-next-use set over unpinned residents, ties
/// broken by trace id — which is what makes the oracle's own decision
/// stream score exactly zero (property-tested).
#[derive(Debug)]
pub struct RegretObserver<'a> {
    index: &'a NextUseIndex,
    phases: u32,
    duration_us: u64,
    /// Contributor-table truncation cap for the report.
    top: usize,
    /// Executions consumed so far = current execution position.
    exec: usize,
    /// Each trace's next execution position, as of its last execution.
    next_of: HashMap<TraceId, usize>,
    resident: HashMap<TraceId, ResidentState>,
    /// Unpinned residents ordered by next use: `next_back()` is the
    /// Belady victim, exactly as in the oracle.
    by_distance: BTreeSet<(usize, TraceId)>,
    churn: HashMap<TraceId, TraceRegret>,
    accesses: u64,
    total: RegretCell,
    phase_cells: Vec<PhaseRegret>,
}

impl<'a> RegretObserver<'a> {
    /// A single-phase walker: everything lands in phase 0.
    pub fn new(index: &'a NextUseIndex) -> Self {
        RegretObserver::with_phases(index, 1, 0)
    }

    /// A walker attributing decisions to `phases` equal time slices of a
    /// run lasting `duration_us` microseconds — the same convention as
    /// [`CostObserver`](crate::CostObserver).
    pub fn with_phases(index: &'a NextUseIndex, phases: u32, duration_us: u64) -> Self {
        RegretObserver::with_top(index, phases, duration_us, TOP_REGRET)
    }

    /// A walker whose report keeps up to `top` contributor traces
    /// (minimum 1) instead of the default [`TOP_REGRET`].
    pub fn with_top(
        index: &'a NextUseIndex,
        phases: u32,
        duration_us: u64,
        top: usize,
    ) -> Self {
        let phases = phases.max(1);
        RegretObserver {
            index,
            phases,
            duration_us,
            top: top.max(1),
            exec: 0,
            next_of: HashMap::new(),
            resident: HashMap::new(),
            by_distance: BTreeSet::new(),
            churn: HashMap::new(),
            accesses: 0,
            total: RegretCell::default(),
            phase_cells: (0..phases).map(|_| PhaseRegret::new()).collect(),
        }
    }

    fn phase_of(&self, time_us: u64) -> usize {
        if self.duration_us == 0 {
            return 0;
        }
        let p = u64::from(self.phases);
        (time_us.saturating_mul(p) / self.duration_us).min(p - 1) as usize
    }

    /// The next execution position of the execution at position `exec`,
    /// tolerating streams longer than the index (alignment slack counts
    /// as "never again").
    fn next_after(&self, exec: usize) -> usize {
        if exec < self.index.total() {
            self.index.next_after(exec)
        } else {
            self.index.total()
        }
    }

    /// One execution consumed: refresh the trace's next use and re-key
    /// its residency entry.
    fn on_execution(&mut self, trace: TraceId) -> usize {
        let j = self.exec;
        self.exec += 1;
        self.accesses += 1;
        let next = self.next_after(j);
        self.next_of.insert(trace, next);
        if let Some(r) = self.resident.get_mut(&trace) {
            if !r.pinned {
                self.by_distance.remove(&(r.next, trace));
                self.by_distance.insert((next, trace));
            }
            r.next = next;
        }
        next
    }

    fn score_evict(
        &mut self,
        region: Region,
        trace: TraceId,
        bytes: u32,
        cause: EvictionCause,
        time_us: u64,
    ) {
        let now = self.exec;
        let total_execs = self.index.total();
        // The trace leaves the hierarchy; its next use was fixed at its
        // last execution.
        let evicted_next = match self.resident.remove(&trace) {
            Some(st) => {
                if !st.pinned {
                    self.by_distance.remove(&(st.next, trace));
                }
                st.next
            }
            None => self.next_of.get(&trace).copied().unwrap_or(total_execs),
        };
        let (victim, victim_next, regret) = if forced(cause) {
            (trace, evicted_next, 0u64)
        } else {
            match self.by_distance.iter().next_back().copied() {
                Some((vn, vid)) if vn > evicted_next => (vid, vn, (vn - evicted_next) as u64),
                Some((vn, vid)) => (vid, vn, 0),
                None => (trace, evicted_next, 0),
            }
        };
        let p = self.phase_of(time_us);
        let r = region.index().min(3);
        let slot = cause_slot(cause);
        self.total.score(regret);
        self.phase_cells[p].total.score(regret);
        self.phase_cells[p].regions[r].slot_mut(slot).score(regret);

        let worst = WorstEviction {
            exec: now as u64,
            phase: p as u32,
            region: region.name().to_string(),
            cause: cause_name(slot).to_string(),
            next_use: evicted_next.saturating_sub(now) as u64,
            reused: evicted_next < total_execs,
            victim: victim.as_u64(),
            victim_next_use: victim_next.saturating_sub(now) as u64,
            victim_reused: victim_next < total_execs,
            regret,
        };
        let entry = self.churn.entry(trace).or_insert_with(|| TraceRegret {
            bytes,
            evictions: 0,
            regret_sum: 0,
            remisses: 0,
            remiss_instructions: 0.0,
            last: (p, r, slot),
            worst: worst.clone(),
        });
        entry.bytes = bytes;
        entry.evictions += 1;
        entry.regret_sum += regret;
        entry.last = (p, r, slot);
        if worst.regret > entry.worst.regret {
            entry.worst = worst;
        }
    }

    /// Builds the serializable report from everything walked so far.
    pub fn report(&self) -> RegretReport {
        let contributors = self
            .churn
            .iter()
            .filter(|(_, s)| s.regret_sum > 0 || s.remisses > 0)
            .map(|(&trace, s)| RegretContributor {
                trace: trace.as_u64(),
                bytes: s.bytes,
                evictions: s.evictions,
                regret_sum: s.regret_sum,
                remisses: s.remisses,
                remiss_instructions: s.remiss_instructions,
                worst: s.worst.clone(),
            })
            .collect();
        RegretReport {
            accesses: self.accesses,
            top: self.top as u64,
            total: self.total,
            phases: self.phase_cells.clone(),
            contributors: sort_contributors(contributors, self.top),
        }
    }
}

impl Observer for RegretObserver<'_> {
    fn on_event(&mut self, event: &CacheEvent) {
        match *event {
            CacheEvent::Hit { trace, .. } => {
                self.on_execution(trace);
            }
            CacheEvent::Miss { trace, bytes, .. } => {
                self.on_execution(trace);
                // The churn rule: a miss on a trace evicted at least once
                // is a re-miss, realized cost of its most recent eviction.
                if let Some(c) = self.churn.get_mut(&trace) {
                    let cost = miss_service(bytes);
                    c.remisses += 1;
                    c.remiss_instructions += cost;
                    let (p, r, slot) = c.last;
                    self.total.remiss(cost);
                    self.phase_cells[p].total.remiss(cost);
                    self.phase_cells[p].regions[r].slot_mut(slot).remiss(cost);
                }
            }
            CacheEvent::Insert { trace, .. } => {
                let next = self
                    .next_of
                    .get(&trace)
                    .copied()
                    .unwrap_or_else(|| self.index.total());
                if let Some(old) = self.resident.insert(
                    trace,
                    ResidentState {
                        next,
                        pinned: false,
                    },
                ) {
                    if !old.pinned {
                        self.by_distance.remove(&(old.next, trace));
                    }
                }
                self.by_distance.insert((next, trace));
            }
            CacheEvent::Evict {
                region,
                trace,
                bytes,
                cause,
                time,
                ..
            } => {
                self.score_evict(region, trace, bytes, cause, time.as_micros());
            }
            CacheEvent::Pin { trace, .. } => {
                if let Some(r) = self.resident.get_mut(&trace) {
                    if !r.pinned {
                        r.pinned = true;
                        self.by_distance.remove(&(r.next, trace));
                    }
                }
            }
            CacheEvent::Unpin { trace, .. } => {
                if let Some(r) = self.resident.get_mut(&trace) {
                    if r.pinned {
                        r.pinned = false;
                        self.by_distance.insert((r.next, trace));
                    }
                }
            }
            // Promotions relocate a trace between regions; it stays
            // resident in the hierarchy, so the victim set is unchanged.
            CacheEvent::Promote { .. }
            | CacheEvent::PromotedIn { .. }
            | CacheEvent::Noop { .. }
            | CacheEvent::PointerReset { .. }
            | CacheEvent::PolicySwap { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle_replay_events;
    use crate::simstream::{SimTrace, TraceOp};
    use gencache_program::Time;

    fn create(id: u64, bytes: u32, t: u64) -> TraceOp {
        TraceOp::Create {
            id: TraceId::new(id),
            bytes,
            time: Time::from_micros(t),
        }
    }

    fn access(id: u64, t: u64) -> TraceOp {
        TraceOp::Access {
            id: TraceId::new(id),
            time: Time::from_micros(t),
        }
    }

    fn miss(id: u64, bytes: u32, t: u64) -> CacheEvent {
        CacheEvent::Miss {
            trace: TraceId::new(id),
            bytes,
            time: Time::from_micros(t),
        }
    }

    fn insert(id: u64, bytes: u32, t: u64) -> CacheEvent {
        CacheEvent::Insert {
            region: Region::Unified,
            trace: TraceId::new(id),
            bytes,
            used: 0,
            time: Time::from_micros(t),
        }
    }

    fn evict(id: u64, bytes: u32, cause: EvictionCause, t: u64) -> CacheEvent {
        CacheEvent::Evict {
            region: Region::Unified,
            trace: TraceId::new(id),
            bytes,
            cause,
            age_us: 0,
            idle_us: 0,
            time: Time::from_micros(t),
        }
    }

    fn walk(trace: &SimTrace, events: &[CacheEvent]) -> RegretReport {
        let index = NextUseIndex::build(trace);
        let mut obs = RegretObserver::new(&index);
        for e in events {
            obs.on_event(e);
        }
        obs.report()
    }

    #[test]
    fn evicting_the_sooner_reused_trace_is_regretful() {
        // Trace 1 runs again 1 execution after the eviction point; trace
        // 2 runs again 2 executions after. Evicting 1 instead of 2 is a
        // regret of exactly 1 execution, realized as one re-miss.
        let trace = SimTrace {
            ops: vec![create(1, 100, 0), create(2, 100, 1), access(1, 2), access(2, 3)],
        };
        let events = vec![
            miss(1, 100, 0),
            insert(1, 100, 0),
            miss(2, 100, 1),
            insert(2, 100, 1),
            evict(1, 100, EvictionCause::Capacity, 1), // wrong victim
            miss(1, 100, 2),                           // the re-miss it caused
            insert(1, 100, 2),
            CacheEvent::Hit {
                region: Region::Unified,
                trace: TraceId::new(2),
                reuse_us: 0,
                time: Time::from_micros(3),
            },
        ];
        let report = walk(&trace, &events);
        assert_eq!(report.accesses, 4);
        assert_eq!(report.total.evictions, 1);
        assert_eq!(report.total.regretful, 1);
        assert_eq!(report.total.regret_sum, 1);
        assert_eq!(report.total.remisses, 1);
        assert!(report.total.remiss_instructions > 0.0);
        assert_eq!(report.contributors.len(), 1);
        let c = &report.contributors[0];
        assert_eq!(c.trace, 1);
        assert_eq!(c.remisses, 1);
        assert_eq!(c.worst.victim, 2);
        assert_eq!(c.worst.next_use, 0); // reused at the very next execution
        assert!(c.worst.reused);
        assert_eq!(c.worst.regret, 1);
    }

    #[test]
    fn evicting_the_furthest_resident_is_regret_free() {
        let trace = SimTrace {
            ops: vec![create(1, 100, 0), create(2, 100, 1), access(1, 2), access(2, 3)],
        };
        let events = vec![
            miss(1, 100, 0),
            insert(1, 100, 0),
            miss(2, 100, 1),
            insert(2, 100, 1),
            evict(2, 100, EvictionCause::Capacity, 1), // Belady's own choice
        ];
        let report = walk(&trace, &events);
        assert_eq!(report.total.evictions, 1);
        assert_eq!(report.total.regretful, 0);
        assert_eq!(report.total.regret_sum, 0);
        // A regret-free, remiss-free eviction is not a contributor.
        assert!(report.contributors.is_empty());
    }

    #[test]
    fn forced_causes_score_zero_but_remisses_still_land() {
        // Unmapping the sooner-reused trace is not a decision: zero
        // regret, but the re-miss is still charged to the unmap cell.
        let trace = SimTrace {
            ops: vec![create(1, 100, 0), create(2, 100, 1), create(1, 80, 2)],
        };
        let events = vec![
            miss(1, 100, 0),
            insert(1, 100, 0),
            miss(2, 100, 1),
            insert(2, 100, 1),
            evict(1, 100, EvictionCause::Unmapped, 1),
            miss(1, 80, 2),
        ];
        let report = walk(&trace, &events);
        assert_eq!(report.total.evictions, 1);
        assert_eq!(report.total.regret_sum, 0);
        assert_eq!(report.total.remisses, 1);
        let cell = report.phases[0].regions[Region::Unified.index()].unmapped;
        assert_eq!(cell.evictions, 1);
        assert_eq!(cell.remisses, 1);
    }

    #[test]
    fn pinned_residents_are_not_belady_victims() {
        // Trace 2 is pinned, so the only alternative to evicting trace 1
        // is trace 3; regret compares against 3, not 2.
        let trace = SimTrace {
            ops: vec![
                create(1, 100, 0),
                create(2, 100, 1),
                create(3, 100, 2),
                access(1, 3),
                access(3, 4),
                access(2, 5),
            ],
        };
        let events = vec![
            miss(1, 100, 0),
            insert(1, 100, 0),
            miss(2, 100, 1),
            insert(2, 100, 1),
            CacheEvent::Pin {
                region: Region::Unified,
                trace: TraceId::new(2),
                time: Time::from_micros(1),
            },
            miss(3, 100, 2),
            insert(3, 100, 2),
            // exec=3 now. Next uses: t1 → exec 3 (now), t3 → exec 4,
            // t2 → exec 5 (pinned, excluded). Belady would evict t3.
            evict(1, 100, EvictionCause::Capacity, 2),
        ];
        let report = walk(&trace, &events);
        assert_eq!(report.total.evictions, 1);
        let c = &report.contributors[0];
        assert_eq!(c.worst.victim, 3, "pinned trace 2 must not be the baseline");
        assert_eq!(c.worst.regret, 1);
    }

    #[test]
    fn oracle_decision_stream_has_zero_regret() {
        // The walker scores the oracle's own capacity decisions at
        // exactly zero — the property the proptest generalizes.
        let trace = SimTrace {
            ops: vec![
                create(1, 100, 0),
                create(2, 100, 1),
                create(3, 100, 2),
                access(1, 3),
                access(3, 4),
                access(2, 5),
                create(4, 120, 6),
                access(1, 7),
            ],
        };
        let (_, events) = oracle_replay_events(&trace, 250);
        let report = walk(&trace, &events);
        assert!(report.total.evictions > 0, "scenario must actually evict");
        assert_eq!(report.total.regret_sum, 0);
        assert_eq!(report.total.regretful, 0);
    }

    #[test]
    fn merge_combines_cells_and_contributors() {
        let trace = SimTrace {
            ops: vec![create(1, 100, 0), create(2, 100, 1), access(1, 2), access(2, 3)],
        };
        let events = vec![
            miss(1, 100, 0),
            insert(1, 100, 0),
            miss(2, 100, 1),
            insert(2, 100, 1),
            evict(1, 100, EvictionCause::Capacity, 1),
            miss(1, 100, 2),
        ];
        let one = walk(&trace, &events);
        let mut merged = one.clone();
        merged.merge(&one);
        assert_eq!(merged.accesses, 2 * one.accesses);
        assert_eq!(merged.total.regret_sum, 2 * one.total.regret_sum);
        assert_eq!(merged.total.max_regret, one.total.max_regret);
        assert_eq!(merged.contributors.len(), 1);
        assert_eq!(merged.contributors[0].evictions, 2);
        assert_eq!(merged.contributors[0].remisses, 2);
    }

    #[test]
    fn phase_bucketing_matches_cost_observer_convention() {
        let trace = SimTrace {
            ops: vec![create(1, 100, 0), create(2, 100, 90), access(1, 95)],
        };
        let index = NextUseIndex::build(&trace);
        let mut obs = RegretObserver::with_phases(&index, 2, 100);
        for e in [
            miss(1, 100, 0),
            insert(1, 100, 0),
            miss(2, 100, 90),
            insert(2, 100, 90),
            evict(1, 100, EvictionCause::Capacity, 90),
            miss(1, 100, 95),
        ] {
            obs.on_event(&e);
        }
        let report = obs.report();
        assert_eq!(report.phases.len(), 2);
        assert_eq!(report.phases[0].total.evictions, 0);
        assert_eq!(report.phases[1].total.evictions, 1);
        // The re-miss is charged to the eviction's phase.
        assert_eq!(report.phases[1].total.remisses, 1);
    }

    #[test]
    fn report_roundtrips_through_value() {
        let trace = SimTrace {
            ops: vec![create(1, 100, 0), create(2, 100, 1), access(1, 2)],
        };
        let events = vec![
            miss(1, 100, 0),
            insert(1, 100, 0),
            miss(2, 100, 1),
            insert(2, 100, 1),
            evict(1, 100, EvictionCause::Capacity, 1),
            miss(1, 100, 2),
        ];
        let report = walk(&trace, &events);
        let value = report.to_value();
        let back = RegretReport::from_value(&value).expect("roundtrip");
        assert_eq!(back, report);
    }
}
