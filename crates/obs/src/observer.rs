//! The [`Observer`] trait and basic sinks.

use std::fmt;
use std::io::Write;

use serde::{Deserialize, Serialize};

use crate::event::CacheEvent;

/// Receives the typed event stream from an instrumented cache model.
///
/// Models are generic over their observer and call it behind an
/// `if observer.enabled()` guard, so with [`NullObserver`] (whose
/// `enabled` is a constant `false`) monomorphization deletes both the
/// call *and* the event construction — observability is zero-cost when
/// off.
pub trait Observer: fmt::Debug {
    /// Whether this observer wants events at all. Emission sites guard
    /// event construction on this, so a constant `false` compiles the
    /// instrumentation away.
    fn enabled(&self) -> bool {
        true
    }

    /// Receives one event. Only called while [`Observer::enabled`]
    /// returns `true`.
    fn on_event(&mut self, event: &CacheEvent);
}

/// The do-nothing observer: the default for every model, optimized out
/// entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn on_event(&mut self, _event: &CacheEvent) {}
}

/// Fan-out: a pair of observers both receive every event, letting one
/// replay feed e.g. a metrics aggregator and a JSONL sink at once.
impl<A: Observer, B: Observer> Observer for (A, B) {
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    fn on_event(&mut self, event: &CacheEvent) {
        if self.0.enabled() {
            self.0.on_event(event);
        }
        if self.1.enabled() {
            self.1.on_event(event);
        }
    }
}

/// Mutable references forward to the referent, so an observer owned by
/// the caller can be lent to a model for one replay.
impl<O: Observer> Observer for &mut O {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn on_event(&mut self, event: &CacheEvent) {
        (**self).on_event(event);
    }
}

/// An observer that buffers every event in memory, for tests and
/// small-scale analysis.
#[derive(Debug, Clone, Default)]
pub struct EventBuffer {
    /// The events received so far, in emission order.
    pub events: Vec<CacheEvent>,
}

impl EventBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        EventBuffer::default()
    }
}

impl Observer for EventBuffer {
    fn on_event(&mut self, event: &CacheEvent) {
        self.events.push(*event);
    }
}

/// One line of a JSONL event export: the event plus the labels needed
/// to interleave streams from several benchmarks or models in one file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// What produced the event (typically the benchmark name).
    pub source: String,
    /// The model configuration that was replaying (e.g. `"unified"`).
    pub model: String,
    /// The event itself.
    pub event: CacheEvent,
}

/// A streaming JSONL sink: every event becomes one [`EventRecord`]
/// line on the underlying writer.
///
/// Write failures panic: the sink is a terminal-tool export path where
/// losing events silently would be worse than dying loudly.
pub struct JsonlSink<W: Write> {
    writer: W,
    source: String,
    model: String,
    lines: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Creates a sink labelling every line with `source` and `model`.
    pub fn new(writer: W, source: impl Into<String>, model: impl Into<String>) -> Self {
        JsonlSink {
            writer,
            source: source.into(),
            model: model.into(),
            lines: 0,
        }
    }

    /// Number of lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("source", &self.source)
            .field("model", &self.model)
            .field("lines", &self.lines)
            .finish_non_exhaustive()
    }
}

impl<W: Write> Observer for JsonlSink<W> {
    fn on_event(&mut self, event: &CacheEvent) {
        let record = EventRecord {
            source: self.source.clone(),
            model: self.model.clone(),
            event: *event,
        };
        let line = serde_json::to_string(&record).expect("events always serialize");
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .expect("event sink write failed");
        self.lines += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Region;
    use gencache_cache::TraceId;
    use gencache_program::Time;

    fn hit() -> CacheEvent {
        CacheEvent::Hit {
            region: Region::Unified,
            trace: TraceId::new(1),
            reuse_us: 5,
            time: Time::from_micros(10),
        }
    }

    #[test]
    fn null_observer_is_disabled() {
        assert!(!NullObserver.enabled());
    }

    #[test]
    fn buffer_collects_and_tee_fans_out() {
        let mut tee = (EventBuffer::new(), EventBuffer::new());
        assert!(tee.enabled());
        tee.on_event(&hit());
        assert_eq!(tee.0.events.len(), 1);
        assert_eq!(tee.1.events.len(), 1);

        // A tee with a null half still works and skips the null side.
        let mut half = (NullObserver, EventBuffer::new());
        assert!(half.enabled());
        half.on_event(&hit());
        assert_eq!(half.1.events.len(), 1);
    }

    #[test]
    fn borrowed_observer_forwards() {
        let mut buf = EventBuffer::new();
        {
            let lent = &mut buf;
            lent.on_event(&hit());
        }
        assert_eq!(buf.events.len(), 1);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new(), "word", "unified");
        sink.on_event(&hit());
        sink.on_event(&hit());
        assert_eq!(sink.lines(), 2);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        for line in text.lines() {
            let rec: EventRecord = serde_json::from_str(line).unwrap();
            assert_eq!(rec.source, "word");
            assert_eq!(rec.model, "unified");
            assert_eq!(rec.event, hit());
        }
    }
}
