//! Log2-bucketed histograms for long-tailed duration/size distributions.

use serde::{Deserialize, Serialize};

/// A histogram whose bucket `b` counts values in `[2^(b-1), 2^b)`
/// (bucket 0 counts exactly zero). Integer-only, so merging shards is
/// exact and order-independent — a requirement for the deterministic
/// parallel-aggregation guarantee.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log2Histogram {
    /// `counts[b]` is the number of recorded values in bucket `b`. The
    /// vector only grows as large as the largest bucket used, keeping
    /// serialized output minimal.
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram::default()
    }

    /// The bucket index for `value`: 0 for 0, otherwise
    /// `floor(log2(value)) + 1`.
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive value range `[lo, hi]` covered by bucket `b`.
    pub fn bucket_range(b: usize) -> (u64, u64) {
        if b == 0 {
            (0, 0)
        } else {
            let lo = 1u64 << (b - 1);
            let hi = if b >= 64 { u64::MAX } else { (1u64 << b) - 1 };
            (lo, hi)
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let b = Log2Histogram::bucket_of(value);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.max = self.max.max(value);
    }

    /// Adds every count of `other` into `self`. Exact and commutative.
    pub fn merge(&mut self, other: &Log2Histogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The largest recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Per-bucket counts, trimmed at the largest used bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// An upper bound on the `q`-quantile (`0.0..=1.0`): the top of the
    /// first bucket whose cumulative count reaches `q × total`. Returns
    /// 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let threshold = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (b, count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= threshold.max(1) {
                return Log2Histogram::bucket_range(b).1.min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        for b in 0..=64 {
            let (lo, hi) = Log2Histogram::bucket_range(b);
            assert_eq!(Log2Histogram::bucket_of(lo), b);
            assert_eq!(Log2Histogram::bucket_of(hi), b);
        }
    }

    #[test]
    fn record_and_merge_are_exact() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for v in [0u64, 1, 5, 100, 1000] {
            a.record(v);
        }
        for v in [7u64, 8, 1_000_000] {
            b.record(v);
        }
        let mut merged_ab = a.clone();
        merged_ab.merge(&b);
        let mut merged_ba = b.clone();
        merged_ba.merge(&a);
        assert_eq!(merged_ab, merged_ba, "merge is commutative");
        assert_eq!(merged_ab.total(), 8);
        assert_eq!(merged_ab.max(), 1_000_000);
    }

    #[test]
    fn quantile_upper_bounds() {
        let mut h = Log2Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert!(h.quantile(0.5) >= 50);
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(Log2Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn json_roundtrip() {
        let mut h = Log2Histogram::new();
        h.record(12);
        h.record(90_000);
        let json = serde_json::to_string(&h).unwrap();
        let back: Log2Histogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }
}
