//! Typed cache-management events.
//!
//! Every state change a cache model makes is describable by one
//! [`CacheEvent`]: the event stream is a complete account of the
//! simulation, from which counters, histograms, occupancy timelines —
//! or the cache's own [`CacheStats`](gencache_cache::CacheStats) — can
//! be reconstructed after the fact.

use std::fmt;

use gencache_cache::{EvictionCause, TraceId};
use gencache_program::Time;
use serde::{Deserialize, Serialize};

/// Which cache of a model an event refers to.
///
/// A unified model uses only [`Region::Unified`]; a generational
/// hierarchy uses the other three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// The single cache of a unified (non-generational) model.
    Unified,
    /// The nursery cache, where new traces are born.
    Nursery,
    /// The probation cache, where nursery evictees prove reuse.
    Probation,
    /// The persistent cache, holding promoted long-lived traces.
    Persistent,
}

impl Region {
    /// All regions, in index order.
    pub const ALL: [Region; 4] = [
        Region::Unified,
        Region::Nursery,
        Region::Probation,
        Region::Persistent,
    ];

    /// A dense index in `0..4`, for per-region arrays.
    pub fn index(self) -> usize {
        match self {
            Region::Unified => 0,
            Region::Nursery => 1,
            Region::Probation => 2,
            Region::Persistent => 3,
        }
    }

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            Region::Unified => "unified",
            Region::Nursery => "nursery",
            Region::Probation => "probation",
            Region::Persistent => "persistent",
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The kind of frontend request a [`CacheEvent::Noop`] records.
///
/// The frontend's stream of trace executions, unmaps and pin windows is
/// independent of cache management (the paper's Section 6 methodology),
/// but an unmap or pin targeting a trace the *replaying* model no longer
/// holds would otherwise leave no mark in the event stream — and the
/// stream could not be replayed against a different layout in which the
/// trace *was* resident. `Noop` events close that gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrontendOp {
    /// The program unmapped the trace's source memory.
    Unmap,
    /// The trace was requested pinned (undeletable).
    Pin,
    /// The trace was requested unpinned.
    Unpin,
}

/// One cache-management event, emitted by a model as it replays a log.
///
/// Durations are in microseconds (the resolution of
/// [`Time`](gencache_program::Time)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheEvent {
    /// A new trace entered a cache region.
    Insert {
        /// The region inserted into.
        region: Region,
        /// The inserted trace.
        trace: TraceId,
        /// Trace body size in bytes.
        bytes: u32,
        /// Resident bytes in the region *after* the insertion.
        used: u64,
        /// When the insertion happened.
        time: Time,
    },
    /// An access found its trace resident.
    Hit {
        /// The region that held the trace.
        region: Region,
        /// The trace hit.
        trace: TraceId,
        /// Microseconds since the trace's previous access (its reuse
        /// interval); zero for the first access after insertion.
        reuse_us: u64,
        /// When the access happened.
        time: Time,
    },
    /// An access missed everywhere; the trace must be (re)generated.
    Miss {
        /// The trace missed.
        trace: TraceId,
        /// Trace body size in bytes.
        bytes: u32,
        /// When the access happened.
        time: Time,
    },
    /// A trace left the hierarchy entirely (it is resident nowhere).
    Evict {
        /// The region it was removed from.
        region: Region,
        /// The removed trace.
        trace: TraceId,
        /// Trace body size in bytes.
        bytes: u32,
        /// Why it was removed.
        cause: EvictionCause,
        /// Microseconds the trace was resident (its lifetime, measured
        /// from first insertion across promotions).
        age_us: u64,
        /// Microseconds since its last access (eviction idle time).
        idle_us: u64,
        /// When the removal happened.
        time: Time,
    },
    /// A trace moved from one region to another in a generational
    /// hierarchy, staying resident.
    Promote {
        /// The region it left.
        from: Region,
        /// The region it entered.
        to: Region,
        /// The promoted trace.
        trace: TraceId,
        /// Trace body size in bytes.
        bytes: u32,
        /// When the promotion happened.
        time: Time,
    },
    /// A promoted trace *arrived* in its destination region: the
    /// accounting counterpart of [`CacheEvent::Promote`], emitted right
    /// after the receiving cache accepted the trace. `Promote` describes
    /// the transfer (and is what the cost model prices); `PromotedIn`
    /// carries the receiving region's post-arrival occupancy so
    /// [`reconstruct_stats`](crate::reconstruct_stats) can account the
    /// arrival as an insertion — making persistent-region reconstruction
    /// exact instead of approximate.
    PromotedIn {
        /// The region the trace arrived in.
        region: Region,
        /// The arriving trace.
        trace: TraceId,
        /// Trace body size in bytes.
        bytes: u32,
        /// Resident bytes in the region *after* the arrival.
        used: u64,
        /// When the promotion happened.
        time: Time,
    },
    /// A trace became undeletable (e.g. an exception is being handled
    /// inside it).
    Pin {
        /// The region holding the trace.
        region: Region,
        /// The pinned trace.
        trace: TraceId,
        /// When the pin happened. Pin log records carry no timestamp of
        /// their own, so replay passes the time of the most recent timed
        /// record as the pin's clock.
        time: Time,
    },
    /// A pinned trace became deletable again.
    Unpin {
        /// The region holding the trace.
        region: Region,
        /// The unpinned trace.
        trace: TraceId,
        /// When the unpin happened (see [`CacheEvent::Pin`] on clocks).
        time: Time,
    },
    /// A frontend request that had no cache effect in the replaying
    /// model: an unmap of a non-resident trace, or a pin/unpin of a
    /// trace held nowhere. Recorded so the complete frontend op stream —
    /// which is independent of cache layout — survives in the export and
    /// can be replayed against *hypothetical* configurations in which
    /// the trace might still be resident (the `simulate` tool).
    Noop {
        /// Which frontend request went unanswered.
        op: FrontendOp,
        /// The trace the request named.
        trace: TraceId,
        /// When the request happened.
        time: Time,
    },
    /// The replacement pointer was forced past protected entries while
    /// searching for insertion space (Section 4.3 pin skips, CLOCK
    /// second chances).
    PointerReset {
        /// The region whose pointer reset.
        region: Region,
        /// How many times the pointer was reset during one insertion.
        resets: u32,
        /// When the insertion that caused the resets happened.
        time: Time,
    },
    /// The adaptive controller hot-swapped the active generational
    /// configuration at an epoch boundary. The indices refer to the
    /// adaptive model's candidate set (in spec-label order); the flush
    /// the swap forces is recorded separately as ordinary
    /// [`Evict`](CacheEvent::Evict) events with
    /// [`EvictionCause::Flush`].
    PolicySwap {
        /// Controller epoch (epochs since replay start) that committed
        /// the swap.
        epoch: u64,
        /// Candidate index active before the swap.
        from: u8,
        /// Candidate index installed by the swap.
        to: u8,
        /// When the swap happened (the clock of the access that closed
        /// the epoch).
        time: Time,
    },
}

impl CacheEvent {
    /// The event's timestamp.
    pub fn time(&self) -> Time {
        match *self {
            CacheEvent::Insert { time, .. }
            | CacheEvent::Hit { time, .. }
            | CacheEvent::Miss { time, .. }
            | CacheEvent::Evict { time, .. }
            | CacheEvent::Promote { time, .. }
            | CacheEvent::PromotedIn { time, .. }
            | CacheEvent::Pin { time, .. }
            | CacheEvent::Unpin { time, .. }
            | CacheEvent::Noop { time, .. }
            | CacheEvent::PointerReset { time, .. }
            | CacheEvent::PolicySwap { time, .. } => time,
        }
    }

    /// The trace the event concerns, if it concerns exactly one.
    pub fn trace(&self) -> Option<TraceId> {
        match *self {
            CacheEvent::Insert { trace, .. }
            | CacheEvent::Hit { trace, .. }
            | CacheEvent::Miss { trace, .. }
            | CacheEvent::Evict { trace, .. }
            | CacheEvent::Promote { trace, .. }
            | CacheEvent::PromotedIn { trace, .. }
            | CacheEvent::Pin { trace, .. }
            | CacheEvent::Unpin { trace, .. }
            | CacheEvent::Noop { trace, .. } => Some(trace),
            CacheEvent::PointerReset { .. } | CacheEvent::PolicySwap { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_index_roundtrip() {
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        assert_eq!(Region::Probation.to_string(), "probation");
    }

    #[test]
    fn event_accessors() {
        let ev = CacheEvent::Miss {
            trace: TraceId::new(7),
            bytes: 100,
            time: Time::from_micros(42),
        };
        assert_eq!(ev.time(), Time::from_micros(42));
        assert_eq!(ev.trace(), Some(TraceId::new(7)));
        let ev = CacheEvent::PointerReset {
            region: Region::Unified,
            resets: 2,
            time: Time::ZERO,
        };
        assert_eq!(ev.trace(), None);
    }

    #[test]
    fn events_roundtrip_through_json() {
        let ev = CacheEvent::Evict {
            region: Region::Persistent,
            trace: TraceId::new(9),
            bytes: 240,
            cause: EvictionCause::Flush,
            age_us: 1_000,
            idle_us: 10,
            time: Time::from_micros(2_000),
        };
        let json = serde_json::to_string(&ev).unwrap();
        let back: CacheEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(ev, back);
    }
}
