//! Rebuilding [`CacheStats`] from an event stream.
//!
//! The event stream is *event-sourced state*: replaying it must land on
//! exactly the counters the cache itself kept. This module is the
//! executable statement of that contract, exercised against every local
//! policy by the property tests in
//! `crates/core/tests/event_reconstruction.rs`.

use gencache_cache::{CacheStats, EvictionCause};

use crate::event::{CacheEvent, Region};

/// Reconstructs the [`CacheStats`] of one cache region purely from its
/// event stream.
///
/// Covers the operations a *local* cache performs: insertions, hits and
/// cause-tagged removals. A [`CacheEvent::Promote`] out of `region` is
/// a removal with [`EvictionCause::Promoted`]; the matching
/// [`CacheEvent::PromotedIn`] arrival is an insertion into the receiving
/// region (generational models account promoted arrivals through
/// `insert_promoted`, which counts as an insert in the receiver's local
/// stats). With both directions covered, the persistent region of a
/// generational hierarchy reconstructs exactly, not approximately — the
/// property tests in `crates/core/tests/event_reconstruction.rs` assert
/// full [`CacheStats`] equality there.
pub fn reconstruct_stats(events: &[CacheEvent], region: Region) -> CacheStats {
    let mut stats = CacheStats::default();
    for event in events {
        match *event {
            CacheEvent::Insert {
                region: r,
                bytes,
                used,
                ..
            } if r == region => {
                stats.on_insert(u64::from(bytes), used);
            }
            CacheEvent::Hit { region: r, .. } if r == region => {
                stats.hits += 1;
            }
            CacheEvent::Evict {
                region: r,
                bytes,
                cause,
                ..
            } if r == region => {
                stats.on_remove(u64::from(bytes), cause);
            }
            CacheEvent::Promote { from, bytes, .. } if from == region => {
                stats.on_remove(u64::from(bytes), EvictionCause::Promoted);
            }
            CacheEvent::PromotedIn {
                region: r,
                bytes,
                used,
                ..
            } if r == region => {
                stats.on_insert(u64::from(bytes), used);
            }
            _ => {}
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_cache::TraceId;
    use gencache_program::Time;

    #[test]
    fn reconstructs_a_small_stream() {
        let events = vec![
            CacheEvent::Miss {
                trace: TraceId::new(1),
                bytes: 100,
                time: Time::ZERO,
            },
            CacheEvent::Insert {
                region: Region::Unified,
                trace: TraceId::new(1),
                bytes: 100,
                used: 100,
                time: Time::ZERO,
            },
            CacheEvent::Hit {
                region: Region::Unified,
                trace: TraceId::new(1),
                reuse_us: 3,
                time: Time::from_micros(3),
            },
            CacheEvent::Evict {
                region: Region::Unified,
                trace: TraceId::new(1),
                bytes: 100,
                cause: EvictionCause::Unmapped,
                age_us: 10,
                idle_us: 7,
                time: Time::from_micros(10),
            },
        ];
        let stats = reconstruct_stats(&events, Region::Unified);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.inserted_bytes, 100);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.unmap_deletions, 1);
        assert_eq!(stats.peak_used_bytes, 100);
        stats.debug_assert_identity(0);
        // Events for other regions are ignored.
        let other = reconstruct_stats(&events, Region::Nursery);
        assert_eq!(other, CacheStats::default());
    }
}
