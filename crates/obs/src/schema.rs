//! Versioned framing for the JSONL event export.
//!
//! A `--events-out` file is a sequence of self-describing JSON lines:
//!
//! 1. exactly one [`StreamHeader`] as the first line, naming the schema
//!    and its version;
//! 2. one [`RunMeta`] line per `(source, model)` stream, carrying the
//!    run facts that are *not* recoverable from the events themselves
//!    (capacity basis, wall-clock duration, phase count);
//! 3. [`EventRecord`] lines, one per [`CacheEvent`](crate::CacheEvent).
//!
//! Consumers call [`parse_stream_line`] per line and branch on the
//! returned [`StreamLine`]; unknown versions are rejected up front
//! instead of misparsing silently. Version 1 files (plain event lines,
//! no header) still parse — every line is an event — so old exports
//! remain readable by consumers that choose to warn instead of reject.

use serde::{Deserialize, Serialize};

use crate::observer::EventRecord;

/// The schema name every event export declares.
pub const EVENTS_SCHEMA: &str = "gencache-events";

/// The version this crate writes and understands.
///
/// * v1 — bare [`EventRecord`] lines, no framing (PR 2–3 exports).
/// * v2 — [`StreamHeader`] first line, [`RunMeta`] per stream, and
///   [`CacheEvent::Noop`](crate::CacheEvent::Noop) events making the
///   frontend op sequence complete (required by the `simulate` tool).
pub const EVENTS_VERSION: u32 = 2;

/// The schema name every `--metrics-out` document declares in its
/// top-level `schema` field.
pub const METRICS_SCHEMA: &str = "gencache-metrics";

/// The metrics-document version this crate's consumers understand.
///
/// * v1 — `suite`/`benchmarks` only, no self-description (PR 2–3).
/// * v2 — adds the top-level `schema`/`version` fields.
pub const METRICS_VERSION: u32 = 2;

/// The first line of a versioned event export.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamHeader {
    /// Schema name; always [`EVENTS_SCHEMA`].
    pub schema: String,
    /// Schema version; see [`EVENTS_VERSION`].
    pub version: u32,
}

impl StreamHeader {
    /// The header this crate writes.
    pub fn current() -> Self {
        StreamHeader {
            schema: EVENTS_SCHEMA.to_string(),
            version: EVENTS_VERSION,
        }
    }

    /// Checks the header names a schema/version this crate understands.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != EVENTS_SCHEMA {
            return Err(format!(
                "unknown schema {:?} (expected {EVENTS_SCHEMA:?})",
                self.schema
            ));
        }
        if self.version != EVENTS_VERSION {
            return Err(format!(
                "unsupported {} version {} (this build understands version {})",
                self.schema, self.version, EVENTS_VERSION
            ));
        }
        Ok(())
    }
}

/// Run facts for one `(source, model)` stream that the events alone
/// cannot reproduce: what the replay was driven with, not what the
/// cache did.
///
/// `peak_trace_bytes` is the unbounded footprint that fixes the paper's
/// capacity rule (`capacity = peak / 2`); `duration_us` and `phases`
/// parameterize phase-bucketed cost attribution. The offline `simulate`
/// tool needs all three to rebuild a [`MetricsReport`](crate::MetricsReport)
/// / [`CostReport`](crate::CostReport) pair identical to the live path's.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMeta {
    /// Benchmark the stream was recorded from.
    pub source: String,
    /// Model label the stream was replayed into (e.g. `"unified"`).
    pub model: String,
    /// Wall-clock span of the recorded run, in microseconds.
    pub duration_us: u64,
    /// Peak unbounded trace footprint of the recording, in bytes.
    pub peak_trace_bytes: u64,
    /// Program phase count of the workload profile.
    pub phases: u32,
}

/// One parsed line of a versioned event export.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamLine {
    /// The file-level schema header.
    Header(StreamHeader),
    /// Per-stream run metadata.
    Meta(RunMeta),
    /// An event line.
    Event(EventRecord),
}

/// Parses one JSONL line of an event export.
///
/// Line kinds are disambiguated structurally: the vendored
/// deserializer errors on missing fields, so each shape matches
/// exactly one of [`StreamHeader`] (`schema`/`version`), [`RunMeta`]
/// (`duration_us`/…) and [`EventRecord`] (`event`).
pub fn parse_stream_line(line: &str) -> Result<StreamLine, String> {
    if let Ok(header) = serde_json::from_str::<StreamHeader>(line) {
        return Ok(StreamLine::Header(header));
    }
    if let Ok(meta) = serde_json::from_str::<RunMeta>(line) {
        return Ok(StreamLine::Meta(meta));
    }
    match serde_json::from_str::<EventRecord>(line) {
        Ok(record) => Ok(StreamLine::Event(record)),
        Err(e) => Err(format!("unrecognized stream line: {e}: {line}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CacheEvent, Region};
    use gencache_cache::TraceId;
    use gencache_program::Time;

    #[test]
    fn header_roundtrip_and_validation() {
        let header = StreamHeader::current();
        let line = serde_json::to_string(&header).unwrap();
        match parse_stream_line(&line).unwrap() {
            StreamLine::Header(h) => {
                assert_eq!(h, header);
                h.validate().unwrap();
            }
            other => panic!("expected header, got {other:?}"),
        }
        let future = StreamHeader {
            schema: EVENTS_SCHEMA.into(),
            version: EVENTS_VERSION + 1,
        };
        assert!(future.validate().is_err());
        let alien = StreamHeader {
            schema: "not-ours".into(),
            version: EVENTS_VERSION,
        };
        assert!(alien.validate().is_err());
    }

    #[test]
    fn meta_and_event_lines_disambiguate() {
        let meta = RunMeta {
            source: "word".into(),
            model: "unified".into(),
            duration_us: 1_000_000,
            peak_trace_bytes: 4096,
            phases: 3,
        };
        let line = serde_json::to_string(&meta).unwrap();
        assert_eq!(parse_stream_line(&line).unwrap(), StreamLine::Meta(meta));

        let record = EventRecord {
            source: "word".into(),
            model: "unified".into(),
            event: CacheEvent::Hit {
                region: Region::Unified,
                trace: TraceId::new(1),
                reuse_us: 0,
                time: Time::ZERO,
            },
        };
        let line = serde_json::to_string(&record).unwrap();
        assert_eq!(parse_stream_line(&line).unwrap(), StreamLine::Event(record));
    }

    #[test]
    fn garbage_lines_error() {
        assert!(parse_stream_line("{\"what\":1}").is_err());
        assert!(parse_stream_line("not json").is_err());
    }
}
