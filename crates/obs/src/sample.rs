//! Bounded-memory sampling aggregation for production-scale replays.
//!
//! [`MetricsObserver`] sees every event and keeps every distribution
//! point; its memory grows with the timeline and the churn map. A
//! [`SamplingObserver`] trades distribution *fidelity* for bounded
//! memory while keeping every monotonic counter **exact**:
//!
//! * counters (accesses, hits, misses, per-region insert/evict/promote
//!   counts and resident bytes) are updated on every event, never
//!   sampled;
//! * histogram recordings are strided — every `stride`-th distribution
//!   value is recorded (seed-offset, deterministic);
//! * the occupancy timeline is capped: when it outgrows `timeline_cap`
//!   the sampling stride doubles and existing samples are thinned to the
//!   new stride, so memory stays `O(timeline_cap)` for any replay
//!   length;
//! * the churn map tracks a deterministic hash-selected subset of
//!   traces;
//! * hit reuse intervals additionally feed a seeded Algorithm-R
//!   reservoir, preserving raw values (not just log2 buckets) for
//!   quantile estimates.
//!
//! All sampling decisions are keyed on event counts and seeded integer
//! hashes — never wall clock or map iteration order — so a sampled
//! report is byte-identical for any `--jobs` count. With
//! [`SamplingParams::exact`] every gate passes and the embedded
//! [`MetricsReport`] is byte-identical to an unsampled
//! [`MetricsObserver`] run (a property test enforces this).

use std::collections::HashMap;

use gencache_program::Time;
use serde::{Deserialize, Serialize};

use crate::event::{CacheEvent, Region};
use crate::metrics::{sort_churn, ChurnEntry, ChurnState, MetricsReport, RegionMetrics, TimelineSample};
use crate::observer::{NullObserver, Observer};

/// SplitMix64: a strong deterministic integer hash, used to select the
/// churn-tracked trace subset.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// xorshift64*: the reservoir's deterministic PRNG.
fn xorshift64star(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Knobs of a [`SamplingObserver`]. All fields are deterministic
/// functions of the event stream and `seed` — no wall clock anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingParams {
    /// Record every `stride`-th histogram value (1 = record all).
    pub stride: u64,
    /// Cap on timeline samples; exceeding it doubles the timeline
    /// stride and thins existing samples (0 = unbounded).
    pub timeline_cap: u64,
    /// Track churn for traces whose seeded hash is divisible by this
    /// (1 = track all traces).
    pub churn_every: u64,
    /// Reservoir capacity for raw hit reuse intervals (0 = disabled).
    pub reservoir: u64,
    /// Seed for the histogram-stride phase, the churn hash and the
    /// reservoir PRNG.
    pub seed: u64,
}

impl SamplingParams {
    /// Every gate passes: the embedded metrics are byte-identical to an
    /// unsampled [`MetricsObserver`] run (plus a reservoir of every
    /// reuse value up to 4096).
    pub fn exact() -> Self {
        SamplingParams {
            stride: 1,
            timeline_cap: 0,
            churn_every: 1,
            reservoir: 4096,
            seed: 0,
        }
    }

    /// Production defaults: 1-in-8 histogram striding, ≤512 timeline
    /// samples, 1-in-8 churn tracking, a 1024-value reuse reservoir.
    pub fn bounded(seed: u64) -> Self {
        SamplingParams {
            stride: 8,
            timeline_cap: 512,
            churn_every: 8,
            reservoir: 1024,
            seed,
        }
    }

    fn normalized(mut self) -> Self {
        self.stride = self.stride.max(1);
        self.churn_every = self.churn_every.max(1);
        self
    }
}

/// What the sampler kept versus skipped — the denominators needed to
/// interpret the sampled distributions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingSummary {
    /// Histogram values recorded.
    pub hist_recorded: u64,
    /// Histogram values skipped by striding.
    pub hist_skipped: u64,
    /// Traces admitted to churn tracking.
    pub churn_tracked: u64,
    /// Traces excluded from churn tracking.
    pub churn_skipped: u64,
    /// Final timeline stride in accesses (0 = no timeline).
    pub timeline_stride: u64,
    /// How many times the timeline stride doubled to stay under the cap.
    pub timeline_doublings: u32,
    /// Reuse values offered to the reservoir.
    pub reservoir_seen: u64,
}

impl SamplingSummary {
    fn merge(&mut self, other: &SamplingSummary) {
        self.hist_recorded += other.hist_recorded;
        self.hist_skipped += other.hist_skipped;
        self.churn_tracked += other.churn_tracked;
        self.churn_skipped += other.churn_skipped;
        self.timeline_stride = self.timeline_stride.max(other.timeline_stride);
        self.timeline_doublings = self.timeline_doublings.max(other.timeline_doublings);
        self.reservoir_seen += other.reservoir_seen;
    }
}

/// A frozen uniform sample of raw values (sorted ascending), with the
/// population size it was drawn from.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReservoirSnapshot {
    /// Maximum values the reservoir holds.
    pub capacity: u64,
    /// Values offered over the whole run (the population size).
    pub seen: u64,
    /// The retained sample, sorted ascending.
    pub values: Vec<u64>,
}

impl ReservoirSnapshot {
    /// The `q`-quantile (0.0 ..= 1.0) of the retained sample, or `None`
    /// if the sample is empty. Nearest-rank on the sorted sample.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.values.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.values.len() as f64).ceil() as usize).clamp(1, self.values.len());
        Some(self.values[rank - 1])
    }

    /// Folds `other` into `self` by re-offering its values through a
    /// deterministic PRNG seeded from both population sizes. The merge
    /// is deterministic for a fixed fold order (suite merges fold in
    /// input-index order); it is approximately — not exactly — a
    /// uniform sample of the combined population.
    pub fn merge(&mut self, other: &ReservoirSnapshot) {
        if other.values.is_empty() && other.seen == 0 {
            return;
        }
        if self.capacity == 0 {
            *self = other.clone();
            return;
        }
        let mut rng = splitmix64(self.seen ^ other.seen.rotate_left(32) ^ 0xA5A5_5A5A_1234_5678) | 1;
        let cap = self.capacity as usize;
        for (count, &v) in (self.seen..).zip(other.values.iter()) {
            if self.values.len() < cap {
                self.values.push(v);
            } else {
                let j = (xorshift64star(&mut rng) % (count + 1)) as usize;
                if j < cap {
                    self.values[j] = v;
                }
            }
        }
        self.seen += other.seen;
        self.values.sort_unstable();
    }
}

/// The serializable end product of a [`SamplingObserver`] run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SampledReport {
    /// The knobs the run used.
    pub params: SamplingParams,
    /// Exact counters plus sampled distributions, in the same shape as
    /// an unsampled report.
    pub metrics: MetricsReport,
    /// Kept/skipped accounting for the sampled parts.
    pub summary: SamplingSummary,
    /// Raw hit reuse intervals (µs), uniformly sampled.
    pub reuse_sample: ReservoirSnapshot,
}

impl Default for SamplingParams {
    fn default() -> Self {
        SamplingParams::exact()
    }
}

impl SampledReport {
    /// Folds `other` into `self`: metrics merge exactly, summaries add,
    /// reservoirs re-sample. Folding shard reports in input-index order
    /// is deterministic for any job count.
    pub fn merge(&mut self, other: &SampledReport) {
        self.metrics.merge(&other.metrics);
        self.summary.merge(&other.summary);
        self.reuse_sample.merge(&other.reuse_sample);
    }
}

/// An [`Observer`] aggregating at bounded memory: exact counters,
/// sampled distributions. Tees every event to an inner observer `O`
/// first (default [`NullObserver`]), so it composes with event export or
/// a [`CostObserver`](crate::CostObserver).
#[derive(Debug, Clone)]
pub struct SamplingObserver<O: Observer = NullObserver> {
    inner: O,
    params: SamplingParams,
    timeline_every: u64,
    hist_ticks: u64,
    accesses: u64,
    hits: u64,
    misses: u64,
    regions: Vec<RegionMetrics>,
    timeline: Vec<TimelineSample>,
    churn: HashMap<u64, ChurnState>,
    summary: SamplingSummary,
    reservoir: Vec<u64>,
    reservoir_rng: u64,
}

impl SamplingObserver<NullObserver> {
    /// A sampler without timeline sampling and no inner observer.
    pub fn new(params: SamplingParams) -> Self {
        SamplingObserver::with_timeline(params, 0)
    }

    /// A sampler taking occupancy samples every `sample_every` accesses
    /// (0 disables the timeline), with no inner observer.
    pub fn with_timeline(params: SamplingParams, sample_every: u64) -> Self {
        SamplingObserver::with_inner(params, sample_every, NullObserver)
    }
}

impl<O: Observer> SamplingObserver<O> {
    /// A sampler forwarding every event to `inner` before aggregating.
    pub fn with_inner(params: SamplingParams, sample_every: u64, inner: O) -> Self {
        let params = params.normalized();
        SamplingObserver {
            inner,
            params,
            timeline_every: sample_every,
            hist_ticks: params.seed % params.stride,
            accesses: 0,
            hits: 0,
            misses: 0,
            regions: vec![RegionMetrics::default(); 4],
            timeline: Vec::new(),
            churn: HashMap::new(),
            summary: SamplingSummary::default(),
            reservoir: Vec::new(),
            reservoir_rng: splitmix64(params.seed) | 1,
        }
    }

    /// The inner observer, for reading back its state after a run.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Consumes the sampler, returning the inner observer.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// Whether the next histogram value passes the stride gate.
    fn hist_gate(&mut self) -> bool {
        let keep = self.hist_ticks.is_multiple_of(self.params.stride);
        self.hist_ticks += 1;
        if keep {
            self.summary.hist_recorded += 1;
        } else {
            self.summary.hist_skipped += 1;
        }
        keep
    }

    /// Whether churn is tracked for this trace id.
    fn churn_gate(&self, trace: u64) -> bool {
        self.params.churn_every <= 1
            || splitmix64(trace ^ self.params.seed).is_multiple_of(self.params.churn_every)
    }

    fn offer_reuse(&mut self, reuse_us: u64) {
        if self.params.reservoir == 0 {
            return;
        }
        let cap = self.params.reservoir as usize;
        if self.reservoir.len() < cap {
            self.reservoir.push(reuse_us);
        } else {
            let j = (xorshift64star(&mut self.reservoir_rng) % (self.summary.reservoir_seen + 1))
                as usize;
            if j < cap {
                self.reservoir[j] = reuse_us;
            }
        }
        self.summary.reservoir_seen += 1;
    }

    fn on_access(&mut self, time: Time) {
        self.accesses += 1;
        if self.timeline_every > 0 && self.accesses.is_multiple_of(self.timeline_every) {
            let mut resident = [0u64; 4];
            for (slot, r) in resident.iter_mut().zip(&self.regions) {
                *slot = r.resident_bytes;
            }
            self.timeline.push(TimelineSample {
                accesses: self.accesses,
                time,
                resident,
                hits: self.hits,
                misses: self.misses,
            });
            if self.params.timeline_cap > 0 && self.timeline.len() as u64 > self.params.timeline_cap
            {
                self.timeline_every *= 2;
                let stride = self.timeline_every;
                self.timeline.retain(|t| t.accesses.is_multiple_of(stride));
                self.summary.timeline_doublings += 1;
            }
        }
    }

    fn region_mut(&mut self, region: Region) -> &mut RegionMetrics {
        &mut self.regions[region.index()]
    }

    /// Builds the serializable report from everything observed so far.
    pub fn report(&self) -> SampledReport {
        let churn = self
            .churn
            .iter()
            .filter(|(_, s)| s.remisses > 0)
            .map(|(&trace, s)| ChurnEntry {
                trace,
                bytes: s.bytes,
                evictions: s.evictions,
                remisses: s.remisses,
            })
            .collect();
        let mut summary = self.summary;
        summary.timeline_stride = self.timeline_every;
        let mut values = self.reservoir.clone();
        values.sort_unstable();
        SampledReport {
            params: self.params,
            metrics: MetricsReport {
                accesses: self.accesses,
                hits: self.hits,
                misses: self.misses,
                regions: self.regions.clone(),
                timeline: self.timeline.clone(),
                top_churn: sort_churn(churn),
            },
            summary,
            reuse_sample: ReservoirSnapshot {
                capacity: self.params.reservoir,
                seen: summary.reservoir_seen,
                values,
            },
        }
    }
}

impl<O: Observer> Observer for SamplingObserver<O> {
    fn on_event(&mut self, event: &CacheEvent) {
        if self.inner.enabled() {
            self.inner.on_event(event);
        }
        match *event {
            CacheEvent::Insert {
                region,
                trace,
                bytes,
                ..
            } => {
                if self.hist_gate() {
                    self.region_mut(region).trace_bytes.record(u64::from(bytes));
                }
                let r = self.region_mut(region);
                r.inserts += 1;
                r.insert_bytes += u64::from(bytes);
                r.resident_bytes += u64::from(bytes);
                r.peak_resident_bytes = r.peak_resident_bytes.max(r.resident_bytes);
                let id = trace.as_u64();
                if self.churn_gate(id) {
                    if !self.churn.contains_key(&id) {
                        self.summary.churn_tracked += 1;
                    }
                    self.churn.entry(id).or_insert_with(|| ChurnState {
                        bytes,
                        ..ChurnState::default()
                    });
                } else {
                    self.summary.churn_skipped += 1;
                }
            }
            CacheEvent::Hit {
                region,
                reuse_us,
                time,
                ..
            } => {
                self.hits += 1;
                self.region_mut(region).hits += 1;
                if self.hist_gate() {
                    self.region_mut(region).reuse_us.record(reuse_us);
                }
                self.offer_reuse(reuse_us);
                self.on_access(time);
            }
            CacheEvent::Miss { trace, time, .. } => {
                self.misses += 1;
                if let Some(state) = self.churn.get_mut(&trace.as_u64()) {
                    if state.evictions > 0 {
                        state.remisses += 1;
                    }
                }
                self.on_access(time);
            }
            CacheEvent::Evict {
                region,
                trace,
                bytes,
                cause,
                age_us,
                idle_us,
                ..
            } => {
                if self.hist_gate() {
                    self.region_mut(region).lifetime_us.record(age_us);
                }
                if self.hist_gate() {
                    self.region_mut(region).evict_idle_us.record(idle_us);
                }
                let r = self.region_mut(region);
                match cause {
                    gencache_cache::EvictionCause::Capacity => r.capacity_evictions += 1,
                    gencache_cache::EvictionCause::Unmapped => r.unmap_evictions += 1,
                    gencache_cache::EvictionCause::Flush => r.flush_evictions += 1,
                    gencache_cache::EvictionCause::Discarded
                    | gencache_cache::EvictionCause::Promoted => r.discards += 1,
                }
                r.evicted_bytes += u64::from(bytes);
                r.resident_bytes = r.resident_bytes.saturating_sub(u64::from(bytes));
                let id = trace.as_u64();
                if self.churn_gate(id) {
                    if !self.churn.contains_key(&id) {
                        self.summary.churn_tracked += 1;
                    }
                    let state = self.churn.entry(id).or_default();
                    state.bytes = bytes;
                    state.evictions += 1;
                }
            }
            CacheEvent::Promote {
                from, to, bytes, ..
            } => {
                let bytes = u64::from(bytes);
                let source = self.region_mut(from);
                source.promotions_out += 1;
                source.resident_bytes = source.resident_bytes.saturating_sub(bytes);
                let target = self.region_mut(to);
                target.promotions_in += 1;
                target.resident_bytes += bytes;
                target.peak_resident_bytes = target.peak_resident_bytes.max(target.resident_bytes);
            }
            // Accounting duplicate of `Promote` (see `MetricsObserver`).
            CacheEvent::PromotedIn { .. } => {}
            CacheEvent::Pin { region, .. } => self.region_mut(region).pins += 1,
            CacheEvent::Unpin { region, .. } => self.region_mut(region).unpins += 1,
            // Frontend requests that changed nothing in this model.
            CacheEvent::Noop { .. } => {}
            CacheEvent::PointerReset { region, resets, .. } => {
                self.region_mut(region).pointer_resets += u64::from(resets);
            }
            CacheEvent::PolicySwap { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsObserver;
    use gencache_cache::{EvictionCause, TraceId};

    /// A small synthetic stream exercising every event kind.
    fn stream(n: u64) -> Vec<CacheEvent> {
        let mut events = Vec::new();
        for i in 0..n {
            let t = Time::from_micros(i * 7);
            let id = TraceId::new(i % 17);
            match i % 5 {
                0 => {
                    events.push(CacheEvent::Miss {
                        trace: id,
                        bytes: 64 + (i as u32 % 9) * 16,
                        time: t,
                    });
                    events.push(CacheEvent::Insert {
                        region: Region::Nursery,
                        trace: id,
                        bytes: 64 + (i as u32 % 9) * 16,
                        used: 1000 + i,
                        time: t,
                    });
                }
                1 | 2 => events.push(CacheEvent::Hit {
                    region: Region::Nursery,
                    trace: id,
                    reuse_us: i * 3 % 97,
                    time: t,
                }),
                3 => events.push(CacheEvent::Evict {
                    region: Region::Nursery,
                    trace: id,
                    bytes: 64,
                    cause: EvictionCause::Capacity,
                    age_us: i,
                    idle_us: i % 13,
                    time: t,
                }),
                _ => events.push(CacheEvent::Promote {
                    from: Region::Nursery,
                    to: Region::Probation,
                    trace: id,
                    bytes: 64,
                    time: t,
                }),
            }
        }
        events
    }

    #[test]
    fn exact_mode_is_byte_identical_to_metrics_observer() {
        let events = stream(500);
        let mut unsampled = MetricsObserver::with_timeline(16);
        let mut sampled = SamplingObserver::with_timeline(SamplingParams::exact(), 16);
        for e in &events {
            unsampled.on_event(e);
            sampled.on_event(e);
        }
        let a = serde_json::to_string(&unsampled.report()).unwrap();
        let b = serde_json::to_string(&sampled.report().metrics).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn counters_stay_exact_under_aggressive_sampling() {
        let events = stream(800);
        let mut exact = MetricsObserver::new();
        let mut sampled = SamplingObserver::new(SamplingParams {
            stride: 16,
            timeline_cap: 8,
            churn_every: 4,
            reservoir: 32,
            seed: 99,
        });
        for e in &events {
            exact.on_event(e);
            sampled.on_event(e);
        }
        let want = exact.report();
        let got = sampled.report();
        assert_eq!(got.metrics.accesses, want.accesses);
        assert_eq!(got.metrics.hits, want.hits);
        assert_eq!(got.metrics.misses, want.misses);
        for region in Region::ALL {
            let w = want.region(region);
            let g = got.metrics.region(region);
            assert_eq!(g.inserts, w.inserts);
            assert_eq!(g.insert_bytes, w.insert_bytes);
            assert_eq!(g.hits, w.hits);
            assert_eq!(g.capacity_evictions, w.capacity_evictions);
            assert_eq!(g.evicted_bytes, w.evicted_bytes);
            assert_eq!(g.promotions_in, w.promotions_in);
            assert_eq!(g.promotions_out, w.promotions_out);
            assert_eq!(g.resident_bytes, w.resident_bytes);
            assert_eq!(g.peak_resident_bytes, w.peak_resident_bytes);
        }
        // Distributions really were sampled.
        assert!(got.summary.hist_skipped > 0);
        assert!(got.summary.churn_skipped > 0);
    }

    #[test]
    fn timeline_stays_bounded() {
        let cap = 8u64;
        let mut sampled = SamplingObserver::with_timeline(
            SamplingParams {
                timeline_cap: cap,
                ..SamplingParams::exact()
            },
            1,
        );
        for e in stream(4000) {
            sampled.on_event(&e);
        }
        let report = sampled.report();
        assert!(report.metrics.timeline.len() as u64 <= cap);
        assert!(report.summary.timeline_doublings > 0);
        assert!(report.summary.timeline_stride > 1);
        // Surviving samples are evenly strided.
        for t in &report.metrics.timeline {
            assert_eq!(t.accesses % report.summary.timeline_stride, 0);
        }
    }

    #[test]
    fn reservoir_is_bounded_uniform_and_seed_deterministic() {
        let events = stream(3000);
        let run = |seed| {
            let mut s = SamplingObserver::new(SamplingParams {
                reservoir: 64,
                seed,
                ..SamplingParams::bounded(seed)
            });
            for e in &events {
                s.on_event(e);
            }
            s.report()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b);
        assert_eq!(a.reuse_sample.values.len(), 64);
        assert!(a.reuse_sample.seen > 64);
        // A different seed picks a different sample of the same population.
        assert_eq!(a.reuse_sample.seen, c.reuse_sample.seen);
        assert_ne!(a.reuse_sample.values, c.reuse_sample.values);
        // Sorted ascending, quantiles ordered.
        let q50 = a.reuse_sample.quantile(0.5).unwrap();
        let q95 = a.reuse_sample.quantile(0.95).unwrap();
        assert!(q50 <= q95);
        assert!(a.reuse_sample.values.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn merge_keeps_counters_exact_and_reservoir_bounded() {
        let events = stream(1000);
        let (first, second) = events.split_at(events.len() / 2);
        let params = SamplingParams {
            reservoir: 32,
            ..SamplingParams::bounded(3)
        };
        let run = |evs: &[CacheEvent]| {
            let mut s = SamplingObserver::new(params);
            for e in evs {
                s.on_event(e);
            }
            s.report()
        };
        let mut merged = run(first);
        merged.merge(&run(second));
        let whole = run(&events);
        assert_eq!(merged.metrics.accesses, whole.metrics.accesses);
        assert_eq!(merged.metrics.hits, whole.metrics.hits);
        assert_eq!(merged.metrics.misses, whole.metrics.misses);
        assert_eq!(merged.reuse_sample.seen, whole.reuse_sample.seen);
        assert!(merged.reuse_sample.values.len() as u64 <= params.reservoir);
        // Deterministic: merging the same shards again gives the same bytes.
        let mut again = run(first);
        again.merge(&run(second));
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }

    #[test]
    fn tees_to_inner_observer() {
        let mut s = SamplingObserver::with_inner(
            SamplingParams::bounded(1),
            0,
            crate::observer::EventBuffer::new(),
        );
        let events = stream(50);
        for e in &events {
            s.on_event(e);
        }
        assert_eq!(s.inner().events.len(), events.len());
        assert_eq!(s.into_inner().events.len(), events.len());
    }

    #[test]
    fn sampled_report_roundtrips_through_json() {
        let mut s = SamplingObserver::with_timeline(SamplingParams::bounded(5), 4);
        for e in stream(300) {
            s.on_event(&e);
        }
        let report = s.report();
        let json = serde_json::to_string(&report).unwrap();
        let back: SampledReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
