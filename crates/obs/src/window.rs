//! Windowed time-series telemetry: the event stream folded into fixed
//! access-count windows, with an online drift detector on the windowed
//! miss rate.
//!
//! The paper's central phenomena — phase shifts, warmup floods, the
//! thrash cliff — are *temporal*, but every other report aggregates
//! over the whole run. A [`WindowObserver`] keeps a bounded series of
//! per-window counters (miss rate, churn, occupancy, eviction-cause
//! mix, promote rate) and [`detect_drift`] runs an EWMA-baselined
//! Page–Hinkley test over the windowed miss rate, emitting typed
//! [`DriftAnnotation`]s (`phase_shift`, `thrash_onset`, `recovery`)
//! keyed by window index. Both are deterministic functions of the
//! event stream, and [`WindowReport::merge`] folds reports in
//! input-index order, so documents embedding them stay byte-identical
//! for any `--jobs` value — and the series doubles as the sensor API
//! the ROADMAP's adaptive policy engine needs.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::event::CacheEvent;
use crate::observer::Observer;

/// Default cap on retained windows before stride-doubling compaction.
pub const DEFAULT_WINDOW_CAP: usize = 512;

/// One fixed access-count window of cache activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    /// Accesses (hits + misses) observed in the window.
    pub accesses: u64,
    /// Accesses satisfied by a resident trace.
    pub hits: u64,
    /// Accesses that missed everywhere.
    pub misses: u64,
    /// Misses on traces that had been evicted at least once — the
    /// churn signature of a thrashing cache.
    pub remisses: u64,
    /// New traces inserted.
    pub inserts: u64,
    /// Bytes of new traces inserted.
    pub insert_bytes: u64,
    /// Entries evicted by the replacement policy.
    pub capacity_evictions: u64,
    /// Entries deleted because their source memory was unmapped.
    pub unmap_evictions: u64,
    /// Entries removed by whole-cache flushes.
    pub flush_evictions: u64,
    /// Entries discarded by management decisions (incl. promotions'
    /// source-region removals).
    pub discards: u64,
    /// Bytes removed for any cause.
    pub evicted_bytes: u64,
    /// Traces promoted up the hierarchy.
    pub promotions: u64,
    /// Resident bytes across all regions when the window closed.
    pub resident_bytes: u64,
}

impl Window {
    /// The window's miss rate, or 0 for an empty window.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Folds `later` into `self` — the stride-doubling compaction step.
    /// Counters add; occupancy keeps the later close snapshot.
    fn absorb(&mut self, later: &Window) {
        self.accesses += later.accesses;
        self.hits += later.hits;
        self.misses += later.misses;
        self.remisses += later.remisses;
        self.inserts += later.inserts;
        self.insert_bytes += later.insert_bytes;
        self.capacity_evictions += later.capacity_evictions;
        self.unmap_evictions += later.unmap_evictions;
        self.flush_evictions += later.flush_evictions;
        self.discards += later.discards;
        self.evicted_bytes += later.evicted_bytes;
        self.promotions += later.promotions;
        self.resident_bytes = later.resident_bytes;
    }
}

/// What kind of behavior change a [`DriftAnnotation`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriftKind {
    /// The miss rate stepped up — a working-set change (warmup flood at
    /// a phase boundary, new code region).
    PhaseShift,
    /// The miss rate stepped up *and* the detection window is
    /// churn-dominated (most misses are re-misses of evicted traces) —
    /// the thrash-cliff signature.
    ThrashOnset,
    /// The miss rate stepped back down toward the earlier baseline.
    Recovery,
}

impl DriftKind {
    /// The annotation's snake_case display name.
    pub fn name(self) -> &'static str {
        match self {
            DriftKind::PhaseShift => "phase_shift",
            DriftKind::ThrashOnset => "thrash_onset",
            DriftKind::Recovery => "recovery",
        }
    }
}

impl std::fmt::Display for DriftKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One detected change point in the windowed miss rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftAnnotation {
    /// Index into [`WindowReport::windows`] where the test fired.
    pub window: u64,
    /// What kind of change.
    pub kind: DriftKind,
    /// The detection window's miss rate.
    pub miss_rate: f64,
    /// The EWMA baseline the rate drifted away from.
    pub baseline: f64,
}

/// EWMA smoothing factor for the baseline miss rate.
///
/// Public (with the other drift constants) so the online adaptive
/// controller in `gencache_core::adaptive` runs the *same* detector the
/// post-hoc annotator does — one set of thresholds, two consumers.
pub const EWMA_ALPHA: f64 = 0.25;
/// Page–Hinkley slack: per-window deviations smaller than this never
/// accumulate toward a detection.
pub const PH_DELTA: f64 = 0.004;
/// Page–Hinkley threshold: the cumulative deviation that fires.
pub const PH_LAMBDA: f64 = 0.02;
/// A rise classifies as [`DriftKind::ThrashOnset`] only above this
/// absolute miss rate and with churn-dominated misses.
pub const THRASH_MISS_RATE: f64 = 0.05;
/// Churn channel: a window needs at least this many re-misses to count
/// as a burst — small-count noise never fires.
pub const CHURN_MIN_REMISSES: u64 = 8;
/// Churn channel: a burst must exceed the EWMA churn baseline by this
/// factor (against a floor of one re-miss, so a quiet baseline still
/// demands an absolute burst).
pub const CHURN_BURST_FACTOR: f64 = 4.0;

/// Runs the online drift detector over a window series — two
/// independent channels, both pure and deterministic (merged reports
/// re-annotated anywhere give identical results):
///
/// * **Miss rate** — an EWMA baseline with a two-sided Page–Hinkley
///   (CUSUM-family) test on the per-window miss rate. Upward detections
///   classify as [`DriftKind::ThrashOnset`] when the detection window's
///   miss rate clears an absolute thrash floor **and** re-misses
///   dominate its misses (wasted regeneration of evicted traces), else
///   [`DriftKind::PhaseShift`]; downward detections are
///   [`DriftKind::Recovery`]. After each detection the baseline
///   re-anchors at the detection window's rate.
/// * **Churn** — an EWMA-baselined burst test on per-window re-misses,
///   flagging [`DriftKind::ThrashOnset`] when a window's re-misses jump
///   well past their running baseline. This is what catches the small
///   persistent-region eviction bursts whose *rate* impact is below the
///   Page–Hinkley slack: a few dozen regretful capacity evictions in a
///   phase move the windowed miss rate by fractions of a percent but
///   spike the churn series an order of magnitude. A window that
///   already fired the rate channel only re-anchors this baseline (one
///   annotation per window).
pub fn detect_drift(windows: &[Window]) -> Vec<DriftAnnotation> {
    let mut annotations = Vec::new();
    let mut baseline: Option<f64> = None;
    let mut up = 0.0f64;
    let mut down = 0.0f64;
    let mut churn_base = 0.0f64;
    for (i, w) in windows.iter().enumerate() {
        if w.accesses == 0 {
            continue;
        }
        let rate = w.miss_rate();
        let remisses = w.remisses as f64;
        let Some(base) = baseline else {
            baseline = Some(rate);
            churn_base = remisses;
            continue;
        };
        up = (up + (rate - base - PH_DELTA)).max(0.0);
        down = (down + (base - rate - PH_DELTA)).max(0.0);
        let mut fired = false;
        if up > PH_LAMBDA {
            let thrashing = rate >= THRASH_MISS_RATE && w.remisses * 2 >= w.misses;
            annotations.push(DriftAnnotation {
                window: i as u64,
                kind: if thrashing {
                    DriftKind::ThrashOnset
                } else {
                    DriftKind::PhaseShift
                },
                miss_rate: rate,
                baseline: base,
            });
            baseline = Some(rate);
            up = 0.0;
            down = 0.0;
            fired = true;
        } else if down > PH_LAMBDA {
            annotations.push(DriftAnnotation {
                window: i as u64,
                kind: DriftKind::Recovery,
                miss_rate: rate,
                baseline: base,
            });
            baseline = Some(rate);
            up = 0.0;
            down = 0.0;
            fired = true;
        } else {
            baseline = Some(base + EWMA_ALPHA * (rate - base));
        }
        let burst = w.remisses >= CHURN_MIN_REMISSES
            && remisses >= CHURN_BURST_FACTOR * churn_base.max(1.0);
        if burst && !fired {
            annotations.push(DriftAnnotation {
                window: i as u64,
                kind: DriftKind::ThrashOnset,
                miss_rate: rate,
                baseline: base,
            });
        }
        churn_base = if burst || fired {
            remisses
        } else {
            churn_base + EWMA_ALPHA * (remisses - churn_base)
        };
    }
    annotations
}

/// The serializable end product of a [`WindowObserver`] run: the window
/// series plus its drift annotations.
///
/// Reports merge by concatenating window series in merge order (each
/// input's annotations shift by its window offset), so folding
/// per-benchmark reports in input-index order is deterministic for any
/// worker count — the same contract every other report type honors.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowReport {
    /// Access-count width of each window. 0 after merging reports with
    /// differing widths (the per-benchmark widths stay in the
    /// per-benchmark sections).
    pub window_accesses: u64,
    /// Times the observer doubled the width to stay within its cap.
    pub doublings: u64,
    /// The window series, oldest first.
    pub windows: Vec<Window>,
    /// Drift detections, in window order.
    pub annotations: Vec<DriftAnnotation>,
}

impl WindowReport {
    /// Folds `other` after `self`: window series concatenate and
    /// `other`'s annotations shift by `self`'s window count. Merging in
    /// input-index order is deterministic for any job count.
    pub fn merge(&mut self, other: &WindowReport) {
        if self.windows.is_empty() {
            self.window_accesses = other.window_accesses;
        } else if !other.windows.is_empty() && self.window_accesses != other.window_accesses {
            self.window_accesses = 0;
        }
        self.doublings += other.doublings;
        let offset = self.windows.len() as u64;
        self.windows.extend_from_slice(&other.windows);
        self.annotations.extend(other.annotations.iter().map(|a| DriftAnnotation {
            window: a.window + offset,
            ..*a
        }));
    }
}

/// An [`Observer`] that folds the event stream into fixed access-count
/// [`Window`]s with bounded memory: when the series outgrows its cap,
/// the window width doubles and adjacent windows fold pairwise — the
/// same stride-doubling scheme the sampling timeline uses, and equally
/// deterministic (keyed on access counts, never wall clock).
#[derive(Debug, Clone)]
pub struct WindowObserver {
    window_accesses: u64,
    cap: usize,
    doublings: u64,
    windows: Vec<Window>,
    current: Window,
    resident_bytes: u64,
    evicted: HashSet<u64>,
}

impl WindowObserver {
    /// An observer cutting a window every `window_accesses` accesses
    /// (minimum 1), compacting past [`DEFAULT_WINDOW_CAP`] windows.
    pub fn new(window_accesses: u64) -> Self {
        WindowObserver::with_cap(window_accesses, DEFAULT_WINDOW_CAP)
    }

    /// An observer with an explicit retained-window cap (minimum 2, so
    /// compaction can always fold a pair).
    pub fn with_cap(window_accesses: u64, cap: usize) -> Self {
        WindowObserver {
            window_accesses: window_accesses.max(1),
            cap: cap.max(2),
            doublings: 0,
            windows: Vec::new(),
            current: Window::default(),
            resident_bytes: 0,
            evicted: HashSet::new(),
        }
    }

    /// Builds the report from everything observed so far, including the
    /// still-open trailing window (if any) and the drift annotations.
    pub fn report(&self) -> WindowReport {
        let mut windows = self.windows.clone();
        if self.current.accesses > 0 {
            let mut tail = self.current;
            tail.resident_bytes = self.resident_bytes;
            windows.push(tail);
        }
        WindowReport {
            window_accesses: self.window_accesses,
            doublings: self.doublings,
            annotations: detect_drift(&windows),
            windows,
        }
    }

    fn on_access(&mut self) {
        self.current.accesses += 1;
        if self.current.accesses >= self.window_accesses {
            self.current.resident_bytes = self.resident_bytes;
            self.windows.push(self.current);
            self.current = Window::default();
            if self.windows.len() > self.cap {
                self.compact();
            }
        }
    }

    /// Doubles the window width and folds adjacent pairs. An odd
    /// trailing window (now half the new width) reopens as the
    /// accumulating window, so no access is ever counted twice.
    fn compact(&mut self) {
        self.window_accesses *= 2;
        self.doublings += 1;
        let old = std::mem::take(&mut self.windows);
        let mut chunks = old.chunks_exact(2);
        for pair in &mut chunks {
            let mut folded = pair[0];
            folded.absorb(&pair[1]);
            self.windows.push(folded);
        }
        if let [leftover] = chunks.remainder() {
            // `current` was just reset by the caller; the leftover
            // half-width window continues filling to the new width.
            self.current = *leftover;
        }
    }
}

impl Observer for WindowObserver {
    fn on_event(&mut self, event: &CacheEvent) {
        match *event {
            CacheEvent::Insert { bytes, .. } => {
                self.current.inserts += 1;
                self.current.insert_bytes += u64::from(bytes);
                self.resident_bytes += u64::from(bytes);
            }
            CacheEvent::Hit { .. } => {
                self.current.hits += 1;
                self.on_access();
            }
            CacheEvent::Miss { trace, .. } => {
                self.current.misses += 1;
                if self.evicted.contains(&trace.as_u64()) {
                    self.current.remisses += 1;
                }
                self.on_access();
            }
            CacheEvent::Evict {
                trace, bytes, cause, ..
            } => {
                match cause {
                    gencache_cache::EvictionCause::Capacity => {
                        self.current.capacity_evictions += 1;
                    }
                    gencache_cache::EvictionCause::Unmapped => {
                        self.current.unmap_evictions += 1;
                    }
                    gencache_cache::EvictionCause::Flush => self.current.flush_evictions += 1,
                    gencache_cache::EvictionCause::Discarded
                    | gencache_cache::EvictionCause::Promoted => self.current.discards += 1,
                }
                self.current.evicted_bytes += u64::from(bytes);
                self.resident_bytes = self.resident_bytes.saturating_sub(u64::from(bytes));
                self.evicted.insert(trace.as_u64());
            }
            CacheEvent::Promote { .. } => {
                // Bytes move between regions; total occupancy is
                // unchanged.
                self.current.promotions += 1;
            }
            // Accounting duplicate of `Promote`.
            CacheEvent::PromotedIn { .. } => {}
            CacheEvent::Pin { .. }
            | CacheEvent::Unpin { .. }
            | CacheEvent::Noop { .. }
            | CacheEvent::PointerReset { .. }
            | CacheEvent::PolicySwap { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_cache::{EvictionCause, TraceId};
    use gencache_program::Time;

    fn insert(trace: u64, bytes: u32) -> CacheEvent {
        CacheEvent::Insert {
            region: crate::event::Region::Unified,
            trace: TraceId::new(trace),
            bytes,
            used: bytes.into(),
            time: Time::ZERO,
        }
    }

    fn hit(trace: u64) -> CacheEvent {
        CacheEvent::Hit {
            region: crate::event::Region::Unified,
            trace: TraceId::new(trace),
            reuse_us: 1,
            time: Time::ZERO,
        }
    }

    fn miss(trace: u64) -> CacheEvent {
        CacheEvent::Miss {
            trace: TraceId::new(trace),
            bytes: 100,
            time: Time::ZERO,
        }
    }

    fn evict(trace: u64, bytes: u32) -> CacheEvent {
        CacheEvent::Evict {
            region: crate::event::Region::Unified,
            trace: TraceId::new(trace),
            bytes,
            cause: EvictionCause::Capacity,
            age_us: 10,
            idle_us: 1,
            time: Time::ZERO,
        }
    }

    /// A synthetic stream with `rates.len()` segments of `per` accesses
    /// each, segment `s` missing at `rates[s]` (evenly spread).
    fn staged_stream(per: u64, rates: &[f64]) -> Vec<CacheEvent> {
        let mut events = Vec::new();
        for (s, &rate) in rates.iter().enumerate() {
            let misses = (rate * per as f64).round() as u64;
            for i in 0..per {
                // Spread misses evenly through the segment.
                let is_miss = misses > 0 && i * misses / per != (i + 1) * misses / per;
                if is_miss {
                    events.push(miss(s as u64 * per + i));
                } else {
                    events.push(hit(0));
                }
            }
        }
        events
    }

    #[test]
    fn windows_cut_every_n_accesses() {
        let mut o = WindowObserver::new(4);
        o.on_event(&insert(1, 100));
        for _ in 0..10 {
            o.on_event(&hit(1));
        }
        let report = o.report();
        assert_eq!(report.window_accesses, 4);
        assert_eq!(report.windows.len(), 3);
        assert_eq!(report.windows[0].accesses, 4);
        assert_eq!(report.windows[2].accesses, 2, "trailing partial window");
        assert_eq!(report.windows[0].inserts, 1);
        assert_eq!(report.windows[0].resident_bytes, 100);
    }

    #[test]
    fn remisses_and_cause_mix_are_tracked() {
        let mut o = WindowObserver::new(100);
        o.on_event(&miss(1)); // cold miss: no remiss
        o.on_event(&insert(1, 50));
        o.on_event(&evict(1, 50));
        o.on_event(&miss(1)); // remiss
        let report = o.report();
        assert_eq!(report.windows.len(), 1);
        let w = &report.windows[0];
        assert_eq!((w.misses, w.remisses), (2, 1));
        assert_eq!(w.capacity_evictions, 1);
        assert_eq!(w.evicted_bytes, 50);
        assert_eq!(w.resident_bytes, 0);
    }

    #[test]
    fn compaction_doubles_width_and_conserves_totals() {
        let mut o = WindowObserver::with_cap(2, 4);
        for i in 0..64 {
            o.on_event(&miss(i));
        }
        let report = o.report();
        assert!(report.doublings >= 3, "doublings: {}", report.doublings);
        assert_eq!(report.window_accesses, 2 << report.doublings);
        assert!(report.windows.len() <= 5);
        let total: u64 = report.windows.iter().map(|w| w.accesses).sum();
        assert_eq!(total, 64, "compaction must conserve accesses");
        let misses: u64 = report.windows.iter().map(|w| w.misses).sum();
        assert_eq!(misses, 64);
    }

    #[test]
    fn detector_flags_planted_step_and_recovery() {
        let events = staged_stream(400, &[0.02, 0.02, 0.02, 0.20, 0.20, 0.02, 0.02]);
        let mut o = WindowObserver::new(100);
        for e in &events {
            o.on_event(e);
        }
        let report = o.report();
        let kinds: Vec<DriftKind> = report.annotations.iter().map(|a| a.kind).collect();
        assert!(
            kinds.contains(&DriftKind::PhaseShift),
            "no upward detection: {:?}",
            report.annotations
        );
        assert!(
            kinds.contains(&DriftKind::Recovery),
            "no recovery: {:?}",
            report.annotations
        );
        // The step starts at access 1200 = window 12; detection within
        // a few windows of onset.
        let first = report.annotations.first().unwrap();
        assert!(
            (12..16).contains(&first.window),
            "detection at window {}",
            first.window
        );
    }

    #[test]
    fn detector_is_silent_on_stationary_streams() {
        let events = staged_stream(400, &[0.05; 8]);
        let mut o = WindowObserver::new(100);
        for e in &events {
            o.on_event(e);
        }
        assert!(o.report().annotations.is_empty());
    }

    #[test]
    fn thrash_classification_requires_churn() {
        // Same step magnitude, one churn-dominated, one cold.
        let mut churny = WindowObserver::new(100);
        let mut cold = WindowObserver::new(100);
        for i in 0..400u64 {
            churny.on_event(&hit(i));
            cold.on_event(&hit(i));
        }
        // Make trace ids 0..40 "previously evicted" for the churny run.
        for i in 0..40u64 {
            churny.on_event(&evict(i, 10));
        }
        for round in 0..4 {
            for i in 0..100u64 {
                let e = if i < 20 { miss(i % 40) } else { hit(i) };
                churny.on_event(&e);
                let e = if i < 20 {
                    miss(10_000 + round * 100 + i)
                } else {
                    hit(i)
                };
                cold.on_event(&e);
            }
        }
        let churny_kinds: Vec<DriftKind> =
            churny.report().annotations.iter().map(|a| a.kind).collect();
        let cold_kinds: Vec<DriftKind> =
            cold.report().annotations.iter().map(|a| a.kind).collect();
        assert!(
            churny_kinds.contains(&DriftKind::ThrashOnset),
            "churn-dominated step should classify as thrash: {churny_kinds:?}"
        );
        assert!(
            cold_kinds.contains(&DriftKind::PhaseShift) && !cold_kinds.contains(&DriftKind::ThrashOnset),
            "cold step should classify as phase shift: {cold_kinds:?}"
        );
    }

    #[test]
    fn churn_burst_below_rate_slack_is_flagged_as_thrash() {
        // A persistent-region eviction burst: the miss *rate* barely
        // moves (well under the Page–Hinkley slack), but one window's
        // re-misses jump from zero to a dozen. The churn channel must
        // flag it; an identical stream with fresh-trace misses (no
        // churn) must stay silent.
        let bursty = |churn: bool| {
            let mut o = WindowObserver::new(1000);
            // Mark traces 0..20 previously evicted so their misses
            // count as re-misses.
            if churn {
                for i in 0..20u64 {
                    o.on_event(&evict(i, 10));
                }
            }
            for w in 0..12u64 {
                for i in 0..1000u64 {
                    // Quiet regime: 5 cold misses per window. Window 8
                    // adds 12 extra misses (rate 0.017 vs 0.005) that
                    // are re-misses in the churny run.
                    let extra = w == 8 && (500..512).contains(&i);
                    let e = if i < 5 {
                        miss(1_000_000 + w * 1000 + i)
                    } else if extra {
                        if churn {
                            miss((i - 500) % 20)
                        } else {
                            miss(2_000_000 + w * 1000 + i)
                        }
                    } else {
                        hit(i)
                    };
                    o.on_event(&e);
                }
            }
            o.report()
        };
        let churny = bursty(true);
        let cold = bursty(false);
        assert_eq!(
            churny
                .annotations
                .iter()
                .map(|a| (a.window, a.kind))
                .collect::<Vec<_>>(),
            vec![(8, DriftKind::ThrashOnset)],
            "churn burst should be the only annotation: {:?}",
            churny.annotations
        );
        assert!(
            cold.annotations.is_empty(),
            "cold burst below rate slack should stay silent: {:?}",
            cold.annotations
        );
    }

    #[test]
    fn merge_concatenates_and_offsets_annotations() {
        let a_events = staged_stream(200, &[0.02, 0.25]);
        let b_events = staged_stream(200, &[0.03, 0.30]);
        let report_of = |events: &[CacheEvent]| {
            let mut o = WindowObserver::new(100);
            for e in events {
                o.on_event(e);
            }
            o.report()
        };
        let a = report_of(&a_events);
        let b = report_of(&b_events);
        assert!(!a.annotations.is_empty() && !b.annotations.is_empty());
        let mut merged = WindowReport::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.windows.len(), a.windows.len() + b.windows.len());
        assert_eq!(
            merged.annotations.len(),
            a.annotations.len() + b.annotations.len()
        );
        let offset = a.windows.len() as u64;
        assert_eq!(
            merged.annotations.last().unwrap().window,
            b.annotations.last().unwrap().window + offset
        );
        // Same-width merge keeps the width; mixed widths zero it.
        assert_eq!(merged.window_accesses, 100);
        let mut mixed = report_of(&a_events);
        let mut other = WindowObserver::new(50);
        for e in &b_events {
            other.on_event(e);
        }
        mixed.merge(&other.report());
        assert_eq!(mixed.window_accesses, 0);
    }

    #[test]
    fn report_roundtrips_through_value() {
        let events = staged_stream(200, &[0.02, 0.25]);
        let mut o = WindowObserver::new(100);
        for e in &events {
            o.on_event(e);
        }
        let report = o.report();
        let json = serde_json::to_string(&report).unwrap();
        let back: WindowReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
