//! The instruction-overhead cost model of Table 2, and the
//! cost-attribution profiler built on top of it.
//!
//! The paper measured DynamoRIO's key management events with Pentium-4
//! performance counters (via PAPI) and fit formulas against trace size.
//! Its evaluation — and therefore ours — charges these fitted costs per
//! event; Figure 11's overhead ratio is the quotient of two such ledgers
//! (Equation 3).
//!
//! The formulas and the [`CostLedger`] accumulator live here (rather than
//! in `gencache-core`, which re-exports them) so that the observer layer
//! can price the event stream without a dependency cycle: a
//! [`CostObserver`] charges every [`CacheEvent`] through the same
//! formulas the models use, and decomposes the total into per-phase ×
//! per-region × per-cause [`CostLedger`]s — turning the headline
//! Equation 3 number into an attributable breakdown ("which phase spent
//! 41M instructions servicing misses", "what fraction of
//! persistent-region overhead is flush-induced").

use gencache_cache::EvictionCause;
use serde::{Deserialize, Serialize};

use crate::event::{CacheEvent, Region};
use crate::observer::Observer;

/// Instruction cost of generating a trace of `size_bytes`:
/// `865 * size^0.8`.
///
/// For the median 242-byte trace this is ≈ 69,834 instructions.
pub fn trace_generation(size_bytes: u32) -> f64 {
    865.0 * f64::from(size_bytes).powf(0.8)
}

/// Instruction cost of one DynamoRIO context switch: 25.
pub fn context_switch() -> f64 {
    25.0
}

/// Instruction cost of evicting (deleting) a trace of `size_bytes`:
/// `2.75 * size + 2650`.
pub fn eviction(size_bytes: u32) -> f64 {
    2.75 * f64::from(size_bytes) + 2650.0
}

/// Instruction cost of promoting (relocating) a trace of `size_bytes`
/// between caches: `22 * size + 8030`. Also the cost of the initial copy
/// from the basic-block cache into the trace cache.
pub fn promotion(size_bytes: u32) -> f64 {
    22.0 * f64::from(size_bytes) + 8030.0
}

/// Full cost of servicing one trace-cache conflict miss: two context
/// switches, one trace regeneration, and one copy into the trace cache
/// (same cost as a promotion). ≈ 85,000 instructions for an average
/// trace.
pub fn miss_service(size_bytes: u32) -> f64 {
    2.0 * context_switch() + trace_generation(size_bytes) + promotion(size_bytes)
}

/// An accumulator of management-instruction overhead, split by event kind.
///
/// # Examples
///
/// ```
/// use gencache_obs::CostLedger;
///
/// let mut ledger = CostLedger::new();
/// ledger.charge_miss(242);      // regenerate + 2 context switches + copy
/// ledger.charge_eviction(242);  // delete one resident trace
/// assert_eq!(ledger.miss_events, 1);
/// assert!(ledger.total() > 80_000.0); // a miss costs ~85k instructions
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostLedger {
    /// Instructions spent regenerating traces after misses.
    pub trace_generation: f64,
    /// Instructions spent in context switches.
    pub context_switches: f64,
    /// Instructions spent evicting/deleting traces.
    pub evictions: f64,
    /// Instructions spent promoting traces between caches (and copying
    /// new traces into the trace cache).
    pub promotions: f64,
    /// Number of miss-service events charged.
    pub miss_events: u64,
    /// Number of eviction events charged.
    pub eviction_events: u64,
    /// Number of promotion events charged.
    pub promotion_events: u64,
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Charges the full service cost of a conflict miss on a trace of
    /// `size_bytes`.
    pub fn charge_miss(&mut self, size_bytes: u32) {
        self.trace_generation += trace_generation(size_bytes);
        self.context_switches += 2.0 * context_switch();
        self.promotions += promotion(size_bytes); // bb→trace cache copy
        self.miss_events += 1;
    }

    /// Charges one eviction/deletion of a trace of `size_bytes`.
    pub fn charge_eviction(&mut self, size_bytes: u32) {
        self.evictions += eviction(size_bytes);
        self.eviction_events += 1;
    }

    /// Charges one inter-cache promotion of a trace of `size_bytes`.
    pub fn charge_promotion(&mut self, size_bytes: u32) {
        self.promotions += promotion(size_bytes);
        self.promotion_events += 1;
    }

    /// Total management instructions accumulated.
    pub fn total(&self) -> f64 {
        self.trace_generation + self.context_switches + self.evictions + self.promotions
    }

    /// The instruction components by name, in a fixed render order.
    pub fn components(&self) -> [(&'static str, f64); 4] {
        [
            ("trace generation", self.trace_generation),
            ("context switches", self.context_switches),
            ("evictions", self.evictions),
            ("promotions", self.promotions),
        ]
    }

    /// Folds `other` into `self`, field by field in declaration order —
    /// merging shard ledgers in input-index order is therefore
    /// bit-deterministic for any worker count.
    pub fn merge(&mut self, other: &CostLedger) {
        self.trace_generation += other.trace_generation;
        self.context_switches += other.context_switches;
        self.evictions += other.evictions;
        self.promotions += other.promotions;
        self.miss_events += other.miss_events;
        self.eviction_events += other.eviction_events;
        self.promotion_events += other.promotion_events;
    }
}

/// Equation 3: `generational / unified` total-overhead ratio. Below 1.0
/// means the generational scheme spends fewer instructions on cache
/// management. Returns 1.0 when the unified overhead is zero (no
/// management happened at all under either scheme).
pub fn overhead_ratio(generational: &CostLedger, unified: &CostLedger) -> f64 {
    let u = unified.total();
    if u == 0.0 {
        1.0
    } else {
        generational.total() / u
    }
}

/// Instruction cost attributed to one eviction cause within one region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CauseCost {
    /// Eviction events charged with this cause.
    pub events: u64,
    /// Instructions those evictions cost.
    pub instructions: f64,
}

impl CauseCost {
    fn charge(&mut self, instructions: f64) {
        self.events += 1;
        self.instructions += instructions;
    }

    fn merge(&mut self, other: &CauseCost) {
        self.events += other.events;
        self.instructions += other.instructions;
    }
}

/// Management overhead attributed to one cache region: every eviction is
/// charged to the region it removed a trace from (further split by
/// cause), and every promotion to the region that received the trace.
/// Miss-service costs are hierarchy-wide and stay at the phase/total
/// level — a miss touches no region until its re-insert.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RegionCost {
    /// Evictions from and promotions into this region.
    pub ledger: CostLedger,
    /// Replacement-policy evictions.
    pub capacity: CauseCost,
    /// Unmapped-memory deletions.
    pub unmapped: CauseCost,
    /// Whole-cache-flush removals.
    pub flush: CauseCost,
    /// Management discards (failed probation, unfit promotions).
    pub discarded: CauseCost,
}

impl RegionCost {
    fn charge_eviction(&mut self, bytes: u32, cause: EvictionCause) {
        let cost = eviction(bytes);
        self.ledger.charge_eviction(bytes);
        match cause {
            EvictionCause::Capacity => self.capacity.charge(cost),
            EvictionCause::Unmapped => self.unmapped.charge(cost),
            EvictionCause::Flush => self.flush.charge(cost),
            EvictionCause::Discarded | EvictionCause::Promoted => self.discarded.charge(cost),
        }
    }

    fn merge(&mut self, other: &RegionCost) {
        self.ledger.merge(&other.ledger);
        self.capacity.merge(&other.capacity);
        self.unmapped.merge(&other.unmapped);
        self.flush.merge(&other.flush);
        self.discarded.merge(&other.discarded);
    }

    /// The cause slices by name, in a fixed render order.
    pub fn causes(&self) -> [(&'static str, CauseCost); 4] {
        [
            ("capacity", self.capacity),
            ("unmap", self.unmapped),
            ("flush", self.flush),
            ("discard", self.discarded),
        ]
    }
}

/// Overhead attributed to one workload phase: the phase-local total plus
/// its per-region decomposition.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Everything charged in this phase, misses included.
    pub ledger: CostLedger,
    /// Region attribution, indexed by [`Region::index`].
    pub regions: Vec<RegionCost>,
}

impl PhaseCost {
    fn new() -> Self {
        PhaseCost {
            ledger: CostLedger::new(),
            regions: vec![RegionCost::default(); 4],
        }
    }

    fn merge(&mut self, other: &PhaseCost) {
        self.ledger.merge(&other.ledger);
        if self.regions.len() < other.regions.len() {
            self.regions.resize(other.regions.len(), RegionCost::default());
        }
        for (mine, theirs) in self.regions.iter_mut().zip(&other.regions) {
            mine.merge(theirs);
        }
    }
}

/// The serializable end product of a [`CostObserver`] run: total
/// management overhead decomposed by phase, region and eviction cause.
///
/// Reports merge associatively field-by-field; shard reports folded in
/// input-index order produce byte-identical JSON for any worker count.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// The run-wide ledger. Charged in event order, so it is *exactly*
    /// (bitwise) the ledger the model itself accumulated — the property
    /// test in `crates/core/tests/cost_attribution.rs` enforces this.
    pub total: CostLedger,
    /// Run-wide region attribution, indexed by [`Region::index`].
    pub regions: Vec<RegionCost>,
    /// Per-phase attribution, in phase order.
    pub phases: Vec<PhaseCost>,
}

impl CostReport {
    /// An empty report with all four region slots and `phases` phase
    /// slots present.
    pub fn new(phases: usize) -> Self {
        CostReport {
            total: CostLedger::new(),
            regions: vec![RegionCost::default(); 4],
            phases: (0..phases.max(1)).map(|_| PhaseCost::new()).collect(),
        }
    }

    /// The attribution for one region.
    pub fn region(&self, region: Region) -> &RegionCost {
        &self.regions[region.index()]
    }

    /// Folds `other` into `self`: ledgers add field-by-field, phases
    /// combine by index (the report grows to the longer phase list).
    /// Merging shard reports in input-index order is deterministic for
    /// any job count.
    pub fn merge(&mut self, other: &CostReport) {
        self.total.merge(&other.total);
        if self.regions.len() < other.regions.len() {
            self.regions.resize(other.regions.len(), RegionCost::default());
        }
        for (mine, theirs) in self.regions.iter_mut().zip(&other.regions) {
            mine.merge(theirs);
        }
        if self.phases.len() < other.phases.len() {
            self.phases.resize(other.phases.len(), PhaseCost::new());
        }
        for (mine, theirs) in self.phases.iter_mut().zip(&other.phases) {
            mine.merge(theirs);
        }
    }

    /// Phase indices sorted by total attributed instructions, most
    /// expensive first (ties broken by phase index), truncated to `n`.
    pub fn top_phases(&self, n: usize) -> Vec<(usize, f64)> {
        let mut ranked: Vec<(usize, f64)> = self
            .phases
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.ledger.total()))
            .filter(|&(_, t)| t > 0.0)
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        ranked.truncate(n);
        ranked
    }
}

/// An [`Observer`] that prices every [`CacheEvent`] through the Table 2
/// formulas and attributes the charges to phases, regions and eviction
/// causes.
///
/// The charge sites mirror the models' own ledger exactly: a `Miss`
/// event is charged [`CostLedger::charge_miss`], an `Evict` event
/// [`CostLedger::charge_eviction`], and a `Promote` event
/// [`CostLedger::charge_promotion`] — in event order, which is the order
/// the model charged its own ledger, so the observer's run-wide total is
/// bitwise-identical to the model's.
///
/// Phases are equal time slices of `[0, duration_us)`, the same
/// convention the `explain` tool uses; a zero duration (or one phase)
/// attributes everything to phase 0.
#[derive(Debug, Clone)]
pub struct CostObserver {
    phases: u32,
    duration_us: u64,
    report: CostReport,
}

impl Default for CostObserver {
    fn default() -> Self {
        CostObserver::new()
    }
}

impl CostObserver {
    /// A single-phase profiler: everything lands in phase 0.
    pub fn new() -> Self {
        CostObserver::with_phases(1, 0)
    }

    /// A profiler attributing events to `phases` equal time slices of a
    /// run lasting `duration_us` microseconds.
    pub fn with_phases(phases: u32, duration_us: u64) -> Self {
        let phases = phases.max(1);
        CostObserver {
            phases,
            duration_us,
            report: CostReport::new(phases as usize),
        }
    }

    /// The phase index (0-based) an event time falls into.
    fn phase_of(&self, time_us: u64) -> usize {
        if self.duration_us == 0 {
            return 0;
        }
        let p = u64::from(self.phases);
        (time_us.saturating_mul(p) / self.duration_us).min(p - 1) as usize
    }

    /// The attribution accumulated so far.
    pub fn report(&self) -> CostReport {
        self.report.clone()
    }

    /// Consumes the observer, returning its report without cloning.
    pub fn into_report(self) -> CostReport {
        self.report
    }
}

impl Observer for CostObserver {
    fn on_event(&mut self, event: &CacheEvent) {
        match *event {
            CacheEvent::Miss { bytes, time, .. } => {
                let p = self.phase_of(time.as_micros());
                self.report.total.charge_miss(bytes);
                self.report.phases[p].ledger.charge_miss(bytes);
            }
            CacheEvent::Evict {
                region,
                bytes,
                cause,
                time,
                ..
            } => {
                let p = self.phase_of(time.as_micros());
                self.report.total.charge_eviction(bytes);
                self.report.phases[p].ledger.charge_eviction(bytes);
                self.report.regions[region.index()].charge_eviction(bytes, cause);
                self.report.phases[p].regions[region.index()].charge_eviction(bytes, cause);
            }
            CacheEvent::Promote { to, bytes, time, .. } => {
                let p = self.phase_of(time.as_micros());
                self.report.total.charge_promotion(bytes);
                self.report.phases[p].ledger.charge_promotion(bytes);
                self.report.regions[to.index()].ledger.charge_promotion(bytes);
                self.report.phases[p].regions[to.index()]
                    .ledger
                    .charge_promotion(bytes);
            }
            CacheEvent::Insert { .. }
            | CacheEvent::Hit { .. }
            | CacheEvent::PromotedIn { .. }
            | CacheEvent::Pin { .. }
            | CacheEvent::Unpin { .. }
            | CacheEvent::Noop { .. }
            | CacheEvent::PointerReset { .. }
            | CacheEvent::PolicySwap { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_cache::TraceId;
    use gencache_program::Time;

    /// The paper's worked example: a 242-byte (median) trace costs 69,834
    /// instructions to generate, 3,316 to evict, and 13,354 to promote.
    #[test]
    fn table2_median_trace_values() {
        assert!((trace_generation(242) - 69_834.0).abs() < 100.0);
        assert!((eviction(242) - 3_315.5).abs() < 1.0);
        assert!((promotion(242) - 13_354.0).abs() < 1.0);
        assert_eq!(context_switch(), 25.0);
    }

    /// "For an average trace, this amounts to approximately 85,000
    /// instructions."
    #[test]
    fn miss_service_near_85k() {
        let cost = miss_service(242);
        assert!(
            (80_000.0..90_000.0).contains(&cost),
            "miss service cost {cost} out of range"
        );
    }

    #[test]
    fn ledger_accumulates() {
        let mut ledger = CostLedger::new();
        ledger.charge_miss(242);
        ledger.charge_eviction(242);
        ledger.charge_promotion(242);
        assert_eq!(ledger.miss_events, 1);
        assert_eq!(ledger.eviction_events, 1);
        assert_eq!(ledger.promotion_events, 1);
        let expected = miss_service(242) + eviction(242) + promotion(242);
        assert!((ledger.total() - expected).abs() < 1e-9);
    }

    #[test]
    fn ledger_merge_adds_fields() {
        let mut a = CostLedger::new();
        a.charge_miss(100);
        let mut b = CostLedger::new();
        b.charge_eviction(100);
        b.charge_promotion(50);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.miss_events, 1);
        assert_eq!(merged.eviction_events, 1);
        assert_eq!(merged.promotion_events, 1);
        assert!((merged.total() - (a.total() + b.total())).abs() < 1e-9);
    }

    #[test]
    fn ratio_of_empty_ledgers_is_one() {
        let a = CostLedger::new();
        let b = CostLedger::new();
        assert_eq!(overhead_ratio(&a, &b), 1.0);
    }

    #[test]
    fn ratio_below_one_when_generational_cheaper() {
        let mut unified = CostLedger::new();
        unified.charge_miss(242);
        unified.charge_miss(242);
        let mut generational = CostLedger::new();
        generational.charge_miss(242);
        generational.charge_promotion(242);
        assert!(overhead_ratio(&generational, &unified) < 1.0);
    }

    #[test]
    fn costs_scale_with_size() {
        assert!(trace_generation(1000) > trace_generation(100));
        assert!(eviction(1000) > eviction(100));
        assert!(promotion(1000) > promotion(100));
        // Generation dominates eviction and promotion at every size.
        for s in [32u32, 242, 1024, 4096] {
            assert!(trace_generation(s) > promotion(s));
            assert!(promotion(s) > eviction(s));
        }
    }

    fn miss(bytes: u32, at: u64) -> CacheEvent {
        CacheEvent::Miss {
            trace: TraceId::new(1),
            bytes,
            time: Time::from_micros(at),
        }
    }

    fn evict(region: Region, bytes: u32, cause: EvictionCause, at: u64) -> CacheEvent {
        CacheEvent::Evict {
            region,
            trace: TraceId::new(2),
            bytes,
            cause,
            age_us: 1,
            idle_us: 1,
            time: Time::from_micros(at),
        }
    }

    fn promote(to: Region, bytes: u32, at: u64) -> CacheEvent {
        CacheEvent::Promote {
            from: Region::Nursery,
            to,
            trace: TraceId::new(3),
            bytes,
            time: Time::from_micros(at),
        }
    }

    #[test]
    fn observer_attributes_by_phase_region_and_cause() {
        // 4 phases over 400µs: events at 50, 150, 250, 350 land in 0..4.
        let mut o = CostObserver::with_phases(4, 400);
        o.on_event(&miss(242, 50));
        o.on_event(&evict(Region::Persistent, 242, EvictionCause::Flush, 150));
        o.on_event(&evict(Region::Persistent, 100, EvictionCause::Capacity, 150));
        o.on_event(&promote(Region::Persistent, 242, 250));
        o.on_event(&evict(Region::Probation, 100, EvictionCause::Discarded, 350));
        let r = o.report();

        assert_eq!(r.total.miss_events, 1);
        assert_eq!(r.total.eviction_events, 3);
        assert_eq!(r.total.promotion_events, 1);
        assert_eq!(r.phases.len(), 4);
        assert_eq!(r.phases[0].ledger.miss_events, 1);
        assert_eq!(r.phases[1].ledger.eviction_events, 2);
        assert_eq!(r.phases[2].ledger.promotion_events, 1);
        assert_eq!(r.phases[3].ledger.eviction_events, 1);

        let persistent = r.region(Region::Persistent);
        assert_eq!(persistent.flush.events, 1);
        assert!((persistent.flush.instructions - eviction(242)).abs() < 1e-9);
        assert_eq!(persistent.capacity.events, 1);
        assert_eq!(persistent.ledger.promotion_events, 1);
        assert_eq!(r.region(Region::Probation).discarded.events, 1);

        // Phase × region × cause: the flush charge sits in phase 1's
        // persistent slot specifically.
        assert_eq!(r.phases[1].regions[Region::Persistent.index()].flush.events, 1);
        assert_eq!(r.phases[0].regions[Region::Persistent.index()].flush.events, 0);

        // The miss stays unattributed at region level.
        let region_total: f64 = r.regions.iter().map(|rc| rc.ledger.total()).sum();
        assert!(region_total < r.total.total());
    }

    #[test]
    fn phase_ledgers_sum_to_total() {
        let mut o = CostObserver::with_phases(8, 1000);
        for i in 0..50u64 {
            o.on_event(&miss(100 + (i as u32 % 7) * 30, i * 19));
            o.on_event(&evict(Region::Unified, 90, EvictionCause::Capacity, i * 19));
        }
        let r = o.report();
        let phase_sum: f64 = r.phases.iter().map(|p| p.ledger.total()).sum();
        assert!((phase_sum - r.total.total()).abs() < 1e-6 * r.total.total());
        let events: u64 = r.phases.iter().map(|p| p.ledger.miss_events).sum();
        assert_eq!(events, r.total.miss_events);
    }

    #[test]
    fn top_phases_ranks_by_cost() {
        let mut o = CostObserver::with_phases(3, 300);
        o.on_event(&miss(242, 250)); // phase 2: one expensive miss
        o.on_event(&evict(Region::Unified, 100, EvictionCause::Capacity, 50)); // phase 0
        let top = o.report().top_phases(5);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 2);
        assert_eq!(top[1].0, 0);
        assert!(top[0].1 > top[1].1);
    }

    #[test]
    fn merge_matches_single_observer() {
        let events: Vec<CacheEvent> = (0..40u64)
            .map(|i| match i % 3 {
                0 => miss(200, i * 25),
                1 => evict(Region::Unified, 150, EvictionCause::Capacity, i * 25),
                _ => promote(Region::Persistent, 120, i * 25),
            })
            .collect();
        let mut whole = CostObserver::with_phases(4, 1000);
        for e in &events {
            whole.on_event(e);
        }
        let (first, second) = events.split_at(events.len() / 2);
        let mut a = CostObserver::with_phases(4, 1000);
        let mut b = CostObserver::with_phases(4, 1000);
        for e in first {
            a.on_event(e);
        }
        for e in second {
            b.on_event(e);
        }
        let mut merged = a.report();
        merged.merge(&b.report());
        assert_eq!(merged, whole.report());
    }

    #[test]
    fn cost_report_roundtrips_through_json() {
        let mut o = CostObserver::with_phases(2, 100);
        o.on_event(&miss(242, 10));
        o.on_event(&evict(Region::Persistent, 242, EvictionCause::Flush, 60));
        o.on_event(&promote(Region::Persistent, 100, 60));
        let report = o.report();
        let json = serde_json::to_string(&report).unwrap();
        let back: CostReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
