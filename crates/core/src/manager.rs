//! The generational code cache manager — the paper's core contribution
//! (Section 5, Figures 7 and 8).
//!
//! Three pseudo-circular caches are arranged by trace age:
//!
//! ```text
//!  new traces ──▶ [ nursery ] ──evict──▶ [ probation ] ──evict──▶ deleted
//!                                             │  ▲
//!                     enough executions while │  │
//!                     on probation            ▼  │
//!                                      [ persistent ] ──evict──▶ deleted
//! ```
//!
//! * Every newly generated trace is inserted into the **nursery**.
//! * A nursery eviction means the trace has "come of age": it is promoted
//!   to the **probation** cache (never back to the nursery).
//! * A probation trace that proves itself — by being executed again —
//!   is promoted to the **persistent** cache, either the moment it is hit
//!   ([`PromotionPolicy::OnHit`]) or when evicted with more than a
//!   threshold of executions ([`PromotionPolicy::OnEviction`], the
//!   algorithm of Figure 8). Probation evictees that fail the test are
//!   deleted.
//! * Persistent evictees are deleted.

use gencache_cache::{
    CodeCache, EntryInfo, EvictionCause, PseudoCircularCache, TraceId, TraceRecord,
};
use gencache_obs::{CacheEvent, FrontendOp, NullObserver, Observer, Region};
use gencache_program::Time;

use crate::adaptive::TemperatureTracker;
use crate::config::{GenerationalConfig, PromotionPolicy};
use crate::cost::CostLedger;
use crate::model::{AccessOutcome, CacheModel, Generation, ModelMetrics};

/// The three-generation trace cache hierarchy.
///
/// # Examples
///
/// ```
/// use gencache_cache::{TraceId, TraceRecord};
/// use gencache_core::{
///     CacheModel, GenerationalConfig, GenerationalModel, Proportions,
///     PromotionPolicy,
/// };
/// use gencache_program::{Addr, Time};
///
/// let config = GenerationalConfig::new(
///     4096,
///     Proportions::best_overall(),
///     PromotionPolicy::OnHit { hits: 1 },
/// );
/// let mut model = GenerationalModel::new(config);
/// let rec = TraceRecord::new(TraceId::new(1), 242, Addr::new(0x1000));
/// assert!(!model.on_access(rec, Time::ZERO).is_hit()); // cold miss → nursery
/// assert!(model.on_access(rec, Time::from_micros(1)).is_hit());
/// ```
#[derive(Debug)]
pub struct GenerationalModel<O: Observer = NullObserver> {
    nursery: PseudoCircularCache,
    probation: PseudoCircularCache,
    persistent: PseudoCircularCache,
    config: GenerationalConfig,
    metrics: ModelMetrics,
    ledger: CostLedger,
    observer: O,
    temperature: Option<TemperatureTracker>,
}

impl GenerationalModel {
    /// Creates the hierarchy described by `config`, uninstrumented
    /// (the [`NullObserver`] compiles the event emission away).
    pub fn new(config: GenerationalConfig) -> Self {
        GenerationalModel::observed(config, NullObserver)
    }
}

impl<O: Observer> GenerationalModel<O> {
    /// Creates the hierarchy described by `config` with every cache
    /// event reported to `observer`.
    pub fn observed(config: GenerationalConfig, observer: O) -> Self {
        GenerationalModel {
            nursery: PseudoCircularCache::new(config.nursery_bytes),
            probation: PseudoCircularCache::new(config.probation_bytes),
            persistent: PseudoCircularCache::new(config.persistent_bytes),
            config,
            metrics: ModelMetrics::default(),
            ledger: CostLedger::new(),
            observer,
            temperature: None,
        }
    }

    /// Attaches (or detaches) a TRRIP-style per-trace temperature
    /// tracker. While attached, a probation trace whose predicted
    /// re-reference interval is "hot" is promoted to the persistent
    /// cache even when the configured [`PromotionPolicy`] alone would
    /// not promote it. Detached by default, so static models are
    /// byte-for-byte unaffected.
    pub fn set_temperature(&mut self, tracker: Option<TemperatureTracker>) {
        self.temperature = tracker;
    }

    /// The attached temperature tracker, if any.
    pub fn temperature(&self) -> Option<&TemperatureTracker> {
        self.temperature.as_ref()
    }

    /// The attached temperature tracker, mutably.
    pub fn temperature_mut(&mut self) -> Option<&mut TemperatureTracker> {
        self.temperature.as_mut()
    }

    /// Flushes all three generations and rebuilds the hierarchy under
    /// `config` — the hot-swap primitive of the adaptive policy engine.
    ///
    /// Every resident trace leaves with an [`CacheEvent::Evict`] carrying
    /// [`EvictionCause::Flush`], emitted in ascending trace-id order
    /// (`trace_ids` is hash-ordered, so the sort is what keeps replays
    /// byte-identical at any job count), and is charged to the cost
    /// ledger like any other eviction. Metrics, ledger, observer and
    /// temperature state carry across: a reconfiguration is a management
    /// action inside one run, not a new model. Pinned entries are
    /// flushed too — the swap rebuilds the arenas, so nothing can stay.
    pub fn reconfigure(&mut self, config: GenerationalConfig, now: Time) {
        for region in [Region::Nursery, Region::Probation, Region::Persistent] {
            let cache = match region {
                Region::Nursery => &mut self.nursery,
                Region::Probation => &mut self.probation,
                _ => &mut self.persistent,
            };
            let mut ids = cache.trace_ids();
            ids.sort_unstable();
            let mut flushed = Vec::with_capacity(ids.len());
            for id in ids {
                if let Some(info) = cache.remove(id, EvictionCause::Flush) {
                    flushed.push(info);
                }
            }
            for info in flushed {
                self.ledger.charge_eviction(info.size_bytes());
                if self.observer.enabled() {
                    self.emit_evict(region, &info, EvictionCause::Flush, now);
                }
            }
        }
        self.nursery = PseudoCircularCache::new(config.nursery_bytes);
        self.probation = PseudoCircularCache::new(config.probation_bytes);
        self.persistent = PseudoCircularCache::new(config.persistent_bytes);
        self.config = config;
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// The attached observer, mutably.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Consumes the model, returning the observer (e.g. to extract a
    /// metrics report after a replay).
    pub fn into_observer(self) -> O {
        self.observer
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &GenerationalConfig {
        &self.config
    }

    /// Which generation currently holds `id`, if any.
    pub fn generation_of(&self, id: TraceId) -> Option<Generation> {
        if self.nursery.contains(id) {
            Some(Generation::Nursery)
        } else if self.probation.contains(id) {
            Some(Generation::Probation)
        } else if self.persistent.contains(id) {
            Some(Generation::Persistent)
        } else {
            None
        }
    }

    /// The nursery cache, for inspection.
    pub fn nursery(&self) -> &PseudoCircularCache {
        &self.nursery
    }

    /// The probation cache, for inspection.
    pub fn probation(&self) -> &PseudoCircularCache {
        &self.probation
    }

    /// The persistent cache, for inspection.
    pub fn persistent(&self) -> &PseudoCircularCache {
        &self.persistent
    }

    /// Emits an [`CacheEvent::Evict`] for an entry that left the
    /// hierarchy entirely, deriving lifetime and idle durations from
    /// the entry's metadata.
    fn emit_evict(&mut self, region: Region, entry: &EntryInfo, cause: EvictionCause, now: Time) {
        self.observer.on_event(&CacheEvent::Evict {
            region,
            trace: entry.id(),
            bytes: entry.size_bytes(),
            cause,
            age_us: now.saturating_micros_since(entry.insert_time),
            idle_us: now.saturating_micros_since(entry.last_access),
            time: now,
        });
    }

    /// Inserts a freshly generated trace into the nursery and runs the
    /// promotion cascade of Figure 8 on everything it displaces.
    fn insert_new_trace(&mut self, rec: TraceRecord, now: Time) {
        match self.nursery.insert(rec, now) {
            Ok(report) => {
                if self.observer.enabled() {
                    if report.pointer_resets > 0 {
                        self.observer.on_event(&CacheEvent::PointerReset {
                            region: Region::Nursery,
                            resets: report.pointer_resets,
                            time: now,
                        });
                    }
                    self.observer.on_event(&CacheEvent::Insert {
                        region: Region::Nursery,
                        trace: rec.id,
                        bytes: rec.size_bytes,
                        used: self.nursery.used_bytes(),
                        time: now,
                    });
                }
                for victim in report.evicted {
                    self.promote_to_probation(victim.entry, now);
                }
            }
            Err(_) => {
                // Larger than the nursery (or blocked by pins): execute
                // unlinked; it will be regenerated on its next encounter.
                self.metrics.uncachable += 1;
            }
        }
    }

    /// A nursery evictee has come of age: move it to the probation cache.
    ///
    /// With a zero-byte probation cache the hierarchy degenerates to two
    /// generations and every evictee is promoted straight to the
    /// persistent cache — the no-probation baseline of the ablation
    /// study.
    fn promote_to_probation(&mut self, victim: EntryInfo, now: Time) {
        if self.config.probation_bytes == 0 {
            self.promote_to_persistent(victim, Region::Nursery, now);
            return;
        }
        self.metrics.promotions_to_probation += 1;
        self.ledger.charge_promotion(victim.size_bytes());
        let (id, bytes) = (victim.id(), victim.size_bytes());
        if self.observer.enabled() {
            self.observer.on_event(&CacheEvent::Promote {
                from: Region::Nursery,
                to: Region::Probation,
                trace: id,
                bytes,
                time: now,
            });
        }
        match self.probation.insert(victim.record, now) {
            Ok(report) => {
                if self.observer.enabled() {
                    if report.pointer_resets > 0 {
                        self.observer.on_event(&CacheEvent::PointerReset {
                            region: Region::Probation,
                            resets: report.pointer_resets,
                            time: now,
                        });
                    }
                    // The arrival accounting counterpart of the Promote
                    // above: the probation cache counted an insert.
                    self.observer.on_event(&CacheEvent::PromotedIn {
                        region: Region::Probation,
                        trace: id,
                        bytes,
                        used: self.probation.used_bytes(),
                        time: now,
                    });
                }
                for pvictim in report.evicted {
                    self.judge_probation_evictee(pvictim.entry, now);
                }
            }
            Err(_) => {
                // Cannot fit in the probation cache at all: treat as a
                // failed probation (deleted).
                self.metrics.probation_discards += 1;
                self.ledger.charge_eviction(victim.size_bytes());
                if self.observer.enabled() {
                    self.emit_evict(Region::Probation, &victim, EvictionCause::Discarded, now);
                }
            }
        }
    }

    /// Decides the fate of a trace evicted from the probation cache:
    /// promotion to persistent if it was executed enough while on
    /// probation, deletion otherwise (Figure 8).
    fn judge_probation_evictee(&mut self, victim: EntryInfo, now: Time) {
        let policy_promote = match self.config.promotion {
            PromotionPolicy::OnEviction { threshold } => victim.access_count > threshold,
            // Under on-hit promotion, qualifying traces left probation the
            // moment they were executed; anything still around at eviction
            // time failed to attract a hit.
            PromotionPolicy::OnHit { .. } => false,
        };
        // The temperature signal can save an evictee the policy would
        // delete: a short predicted re-reference interval means the miss
        // is imminent.
        let hot = self
            .temperature
            .as_ref()
            .is_some_and(|t| t.is_hot(victim.id()));
        let promote = policy_promote || hot;
        if promote && !policy_promote {
            if let Some(t) = &mut self.temperature {
                t.note_hot_promotion();
            }
        }
        if promote {
            self.promote_to_persistent(victim, Region::Probation, now);
        } else {
            self.metrics.probation_discards += 1;
            self.ledger.charge_eviction(victim.size_bytes());
            if self.observer.enabled() {
                self.emit_evict(Region::Probation, &victim, EvictionCause::Discarded, now);
            }
        }
    }

    /// Moves a trace into the persistent cache, carrying the entry
    /// metadata it accumulated in the cache it came from (access count,
    /// first insert time, pin state) — promotion relocates a trace, it
    /// does not create a new one. Persistent evictees are deleted
    /// outright.
    fn promote_to_persistent(&mut self, victim: EntryInfo, from: Region, now: Time) {
        self.metrics.promotions_to_persistent += 1;
        self.ledger.charge_promotion(victim.size_bytes());
        let (id, bytes) = (victim.id(), victim.size_bytes());
        if self.observer.enabled() {
            self.observer.on_event(&CacheEvent::Promote {
                from,
                to: Region::Persistent,
                trace: id,
                bytes,
                time: now,
            });
        }
        match self.persistent.insert_promoted(victim, now) {
            Ok(report) => {
                if self.observer.enabled() {
                    if report.pointer_resets > 0 {
                        self.observer.on_event(&CacheEvent::PointerReset {
                            region: Region::Persistent,
                            resets: report.pointer_resets,
                            time: now,
                        });
                    }
                    // Arrival accounting: `insert_promoted` counted an
                    // insert in the persistent cache's local stats.
                    self.observer.on_event(&CacheEvent::PromotedIn {
                        region: Region::Persistent,
                        trace: id,
                        bytes,
                        used: self.persistent.used_bytes(),
                        time: now,
                    });
                }
                for evictee in report.evicted {
                    self.ledger.charge_eviction(evictee.size_bytes());
                    if self.observer.enabled() {
                        self.emit_evict(Region::Persistent, &evictee.entry, evictee.cause, now);
                    }
                }
            }
            Err(_) => {
                // Too large for the persistent cache: deleted.
                self.ledger.charge_eviction(victim.size_bytes());
                if self.observer.enabled() {
                    self.emit_evict(Region::Persistent, &victim, EvictionCause::Discarded, now);
                }
            }
        }
    }
}

impl<O: Observer> CacheModel for GenerationalModel<O> {
    fn name(&self) -> String {
        format!("generational {}", self.config)
    }

    fn on_access(&mut self, rec: TraceRecord, now: Time) -> AccessOutcome {
        self.metrics.accesses += 1;
        if let Some(t) = &mut self.temperature {
            t.observe(rec.id);
        }

        // Reuse intervals need the pre-touch access time; only pay for
        // the extra lookup when instrumented.
        let prev_access = if self.observer.enabled() {
            [&self.nursery, &self.persistent, &self.probation]
                .iter()
                .find_map(|c| c.entry(rec.id))
                .map(|e| e.last_access)
        } else {
            None
        };
        let reuse_us = prev_access.map_or(0, |t| now.saturating_micros_since(t));

        if self.nursery.touch(rec.id, now) {
            self.metrics.hits += 1;
            if self.observer.enabled() {
                self.observer.on_event(&CacheEvent::Hit {
                    region: Region::Nursery,
                    trace: rec.id,
                    reuse_us,
                    time: now,
                });
            }
            return AccessOutcome::Hit(Generation::Nursery);
        }
        if self.persistent.touch(rec.id, now) {
            self.metrics.hits += 1;
            if self.observer.enabled() {
                self.observer.on_event(&CacheEvent::Hit {
                    region: Region::Persistent,
                    trace: rec.id,
                    reuse_us,
                    time: now,
                });
            }
            return AccessOutcome::Hit(Generation::Persistent);
        }
        if self.probation.touch(rec.id, now) {
            self.metrics.hits += 1;
            if self.observer.enabled() {
                self.observer.on_event(&CacheEvent::Hit {
                    region: Region::Probation,
                    trace: rec.id,
                    reuse_us,
                    time: now,
                });
            }
            // Counter-free promotion: the N-th probation hit immediately
            // upgrades the trace to the persistent cache (Section 5.3).
            // A temperature-hot trace (short predicted re-reference
            // interval) promotes on any probation hit.
            if let PromotionPolicy::OnHit { hits } = self.config.promotion {
                let count = self
                    .probation
                    .entry(rec.id)
                    .expect("touched entry is resident")
                    .access_count;
                let hot = self.temperature.as_ref().is_some_and(|t| t.is_hot(rec.id));
                if count >= hits || hot {
                    if count < hits {
                        if let Some(t) = &mut self.temperature {
                            t.note_hot_promotion();
                        }
                    }
                    // Promote the *resident entry*, not the incoming
                    // access record: the entry carries the access count
                    // and insert time accumulated on probation.
                    let victim = self
                        .probation
                        .remove(rec.id, EvictionCause::Promoted)
                        .expect("touched entry is resident");
                    self.promote_to_persistent(victim, Region::Probation, now);
                }
            }
            return AccessOutcome::Hit(Generation::Probation);
        }

        // Conflict (or cold) miss: regenerate and insert as a new trace.
        self.metrics.misses += 1;
        self.ledger.charge_miss(rec.size_bytes);
        if self.observer.enabled() {
            self.observer.on_event(&CacheEvent::Miss {
                trace: rec.id,
                bytes: rec.size_bytes,
                time: now,
            });
        }
        self.insert_new_trace(rec, now);
        AccessOutcome::Miss
    }

    fn on_unmap(&mut self, id: TraceId, now: Time) -> bool {
        for region in [Region::Nursery, Region::Probation, Region::Persistent] {
            let cache = match region {
                Region::Nursery => &mut self.nursery,
                Region::Probation => &mut self.probation,
                _ => &mut self.persistent,
            };
            if let Some(info) = cache.remove(id, EvictionCause::Unmapped) {
                self.metrics.unmap_deletions += 1;
                self.ledger.charge_eviction(info.size_bytes());
                if self.observer.enabled() {
                    self.emit_evict(region, &info, EvictionCause::Unmapped, now);
                }
                return true;
            }
        }
        if self.observer.enabled() {
            self.observer.on_event(&CacheEvent::Noop {
                op: FrontendOp::Unmap,
                trace: id,
                time: now,
            });
        }
        false
    }

    fn on_pin(&mut self, id: TraceId, pinned: bool, now: Time) -> bool {
        for region in [Region::Nursery, Region::Probation, Region::Persistent] {
            let cache = match region {
                Region::Nursery => &mut self.nursery,
                Region::Probation => &mut self.probation,
                _ => &mut self.persistent,
            };
            if cache.set_pinned(id, pinned) {
                if self.observer.enabled() {
                    let event = if pinned {
                        CacheEvent::Pin {
                            region,
                            trace: id,
                            time: now,
                        }
                    } else {
                        CacheEvent::Unpin {
                            region,
                            trace: id,
                            time: now,
                        }
                    };
                    self.observer.on_event(&event);
                }
                return true;
            }
        }
        if self.observer.enabled() {
            self.observer.on_event(&CacheEvent::Noop {
                op: if pinned {
                    FrontendOp::Pin
                } else {
                    FrontendOp::Unpin
                },
                trace: id,
                time: now,
            });
        }
        false
    }

    fn metrics(&self) -> &ModelMetrics {
        &self.metrics
    }

    fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    fn resident_bytes(&self) -> u64 {
        self.nursery.used_bytes() + self.probation.used_bytes() + self.persistent.used_bytes()
    }

    fn capacity_bytes(&self) -> u64 {
        self.config.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Proportions;
    use gencache_program::Addr;

    fn rec(id: u64, size: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(id), size, Addr::new(0x1_0000 + id * 0x100))
    }

    fn model(total: u64, promotion: PromotionPolicy) -> GenerationalModel {
        GenerationalModel::new(GenerationalConfig::new(
            total,
            Proportions::even_thirds(),
            promotion,
        ))
    }

    #[test]
    fn new_traces_enter_the_nursery() {
        let mut m = model(3000, PromotionPolicy::OnHit { hits: 1 });
        m.on_access(rec(1, 200), Time::ZERO);
        assert_eq!(m.generation_of(TraceId::new(1)), Some(Generation::Nursery));
        assert_eq!(m.metrics().misses, 1);
    }

    #[test]
    fn nursery_evictees_move_to_probation() {
        // Nursery = 1000 bytes; five 250-byte traces force evictions.
        let mut m = model(3000, PromotionPolicy::OnHit { hits: 1 });
        for id in 0..5 {
            m.on_access(rec(id, 250), Time::ZERO);
        }
        // Trace 0 was evicted from the nursery (4×250 = 1000 fills it).
        assert_eq!(
            m.generation_of(TraceId::new(0)),
            Some(Generation::Probation)
        );
        assert_eq!(m.metrics().promotions_to_probation, 1);
        // It is still a hit — execution can continue from probation.
        assert!(m.on_access(rec(0, 250), Time::from_micros(1)).is_hit());
    }

    #[test]
    fn probation_hit_promotes_immediately_under_on_hit() {
        let mut m = model(3000, PromotionPolicy::OnHit { hits: 1 });
        for id in 0..5 {
            m.on_access(rec(id, 250), Time::ZERO);
        }
        assert_eq!(
            m.generation_of(TraceId::new(0)),
            Some(Generation::Probation)
        );
        m.on_access(rec(0, 250), Time::from_micros(1));
        assert_eq!(
            m.generation_of(TraceId::new(0)),
            Some(Generation::Persistent)
        );
        assert_eq!(m.metrics().promotions_to_persistent, 1);
        assert!(m.on_access(rec(0, 250), Time::from_micros(2)).is_hit());
    }

    #[test]
    fn on_hit_two_requires_two_probation_hits() {
        let mut m = model(3000, PromotionPolicy::OnHit { hits: 2 });
        for id in 0..5 {
            m.on_access(rec(id, 250), Time::ZERO);
        }
        m.on_access(rec(0, 250), Time::from_micros(1));
        assert_eq!(
            m.generation_of(TraceId::new(0)),
            Some(Generation::Probation)
        );
        m.on_access(rec(0, 250), Time::from_micros(2));
        assert_eq!(
            m.generation_of(TraceId::new(0)),
            Some(Generation::Persistent)
        );
    }

    #[test]
    fn promotion_carries_probation_metadata_into_persistent() {
        let mut m = model(3000, PromotionPolicy::OnHit { hits: 2 });
        for id in 0..5 {
            m.on_access(rec(id, 250), Time::from_micros(id));
        }
        // Trace 0 entered probation at t=4µs (displaced by the 5th
        // insert). Two probation hits promote it under OnHit{2}.
        m.on_access(rec(0, 250), Time::from_micros(10));
        m.on_access(rec(0, 250), Time::from_micros(11));
        let e = m.persistent().entry(TraceId::new(0)).unwrap();
        assert_eq!(
            e.access_count, 2,
            "probation access count must survive promotion"
        );
        assert_eq!(
            e.insert_time,
            Time::from_micros(4),
            "insert time must not reset at promotion"
        );
        assert_eq!(e.last_access, Time::from_micros(11));
    }

    #[test]
    fn probation_evictee_without_hits_is_deleted() {
        let mut m = model(3000, PromotionPolicy::OnHit { hits: 1 });
        // Stream enough distinct traces to push some all the way out of
        // probation without ever re-executing them.
        for id in 0..12 {
            m.on_access(rec(id, 250), Time::ZERO);
        }
        assert!(m.metrics().probation_discards > 0);
        assert_eq!(m.metrics().promotions_to_persistent, 0);
        assert_eq!(m.persistent().len(), 0);
    }

    #[test]
    fn on_eviction_policy_promotes_hot_probation_evictees() {
        let mut m = model(3000, PromotionPolicy::OnEviction { threshold: 2 });
        for id in 0..5 {
            m.on_access(rec(id, 250), Time::ZERO);
        }
        // Trace 0 is on probation. Execute it 3 times (> threshold 2).
        for i in 0..3 {
            assert!(m.on_access(rec(0, 250), Time::from_micros(1 + i)).is_hit());
        }
        assert_eq!(
            m.generation_of(TraceId::new(0)),
            Some(Generation::Probation)
        );
        // Push more traces through so trace 0 is evicted from probation.
        for id in 5..12 {
            m.on_access(rec(id, 250), Time::from_micros(100 + id));
        }
        assert_eq!(
            m.generation_of(TraceId::new(0)),
            Some(Generation::Persistent),
            "hot probation evictee must be promoted"
        );
    }

    #[test]
    fn on_eviction_policy_discards_cold_evictees() {
        let mut m = model(3000, PromotionPolicy::OnEviction { threshold: 2 });
        for id in 0..5 {
            m.on_access(rec(id, 250), Time::ZERO);
        }
        // One probation hit only (≤ threshold).
        m.on_access(rec(0, 250), Time::from_micros(1));
        for id in 5..12 {
            m.on_access(rec(id, 250), Time::from_micros(100 + id));
        }
        assert_eq!(m.generation_of(TraceId::new(0)), None);
        assert!(m.metrics().probation_discards > 0);
    }

    #[test]
    fn unmap_deletes_from_any_generation() {
        let mut m = model(3000, PromotionPolicy::OnHit { hits: 1 });
        for id in 0..5 {
            m.on_access(rec(id, 250), Time::ZERO);
        }
        // 0 → persistent, 1 → probation, 4 → nursery.
        m.on_access(rec(0, 250), Time::from_micros(1));
        assert_eq!(
            m.generation_of(TraceId::new(0)),
            Some(Generation::Persistent)
        );
        let t = Time::from_micros(2);
        assert!(m.on_unmap(TraceId::new(0), t));
        assert!(m.on_unmap(TraceId::new(1), t));
        assert!(m.on_unmap(TraceId::new(4), t));
        assert!(!m.on_unmap(TraceId::new(99), t));
        assert_eq!(m.metrics().unmap_deletions, 3);
        assert_eq!(m.generation_of(TraceId::new(0)), None);
    }

    #[test]
    fn promotion_costs_are_charged() {
        let mut m = model(3000, PromotionPolicy::OnHit { hits: 1 });
        for id in 0..5 {
            m.on_access(rec(id, 250), Time::ZERO);
        }
        m.on_access(rec(0, 250), Time::from_micros(1)); // probation → persistent
        let ledger = m.ledger();
        assert_eq!(ledger.promotion_events, {
            // 5 cold misses each charge a bb→trace copy as part of the
            // miss; those are *not* promotion_events. Events here: one
            // nursery→probation plus one probation→persistent.
            2
        });
        assert!(ledger.promotions > 0.0);
    }

    #[test]
    fn capacity_and_residency_accounting() {
        let mut m = model(3000, PromotionPolicy::OnHit { hits: 1 });
        assert_eq!(m.capacity_bytes(), 3000);
        m.on_access(rec(1, 250), Time::ZERO);
        assert_eq!(m.resident_bytes(), 250);
    }

    #[test]
    fn pin_works_across_generations() {
        let mut m = model(3000, PromotionPolicy::OnHit { hits: 1 });
        m.on_access(rec(1, 250), Time::ZERO);
        assert!(m.on_pin(TraceId::new(1), true, Time::ZERO));
        assert!(!m.on_pin(TraceId::new(9), true, Time::ZERO));
        assert!(m.nursery().entry(TraceId::new(1)).unwrap().pinned);
    }

    #[test]
    fn zero_probation_degenerates_to_two_generations() {
        let m2 = GenerationalModel::new(GenerationalConfig::new(
            2000,
            Proportions::new(0.5, 0.0, 0.5),
            PromotionPolicy::OnHit { hits: 1 },
        ));
        let mut m = m2;
        for id in 0..5 {
            m.on_access(rec(id, 250), Time::ZERO);
        }
        // Nursery (1000 B) overflows at the 5th trace; the evictee skips
        // probation and lands directly in the persistent cache.
        assert_eq!(
            m.generation_of(TraceId::new(0)),
            Some(Generation::Persistent)
        );
        assert_eq!(m.metrics().promotions_to_probation, 0);
        assert_eq!(m.metrics().promotions_to_persistent, 1);
    }

    #[test]
    fn name_describes_configuration() {
        let m = model(3000, PromotionPolicy::OnHit { hits: 1 });
        assert!(m.name().contains("generational"));
        assert!(m.name().contains("33-33-33"));
    }
}
