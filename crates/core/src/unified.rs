//! The unified-cache baseline: one pseudo-circular trace cache.
//!
//! The paper's baseline for every benchmark is a single pseudo-circular
//! cache sized at `0.5 × maxCache`, where `maxCache` is the unbounded
//! size that benchmark reached (Section 6).

use gencache_cache::{CodeCache, EvictionCause, PseudoCircularCache, TraceId, TraceRecord};
use gencache_program::Time;

use crate::cost::CostLedger;
use crate::model::{AccessOutcome, CacheModel, Generation, ModelMetrics};

/// A single bounded pseudo-circular trace cache with miss-cost accounting.
///
/// # Examples
///
/// ```
/// use gencache_cache::{TraceId, TraceRecord};
/// use gencache_core::{CacheModel, UnifiedModel};
/// use gencache_program::{Addr, Time};
///
/// let mut model = UnifiedModel::new(1024);
/// let rec = TraceRecord::new(TraceId::new(1), 242, Addr::new(0x1000));
/// assert!(!model.on_access(rec, Time::ZERO).is_hit()); // cold miss
/// assert!(model.on_access(rec, Time::from_micros(1)).is_hit());
/// assert_eq!(model.metrics().misses, 1);
/// ```
#[derive(Debug)]
pub struct UnifiedModel {
    cache: Box<dyn CodeCache>,
    name: String,
    metrics: ModelMetrics,
    ledger: CostLedger,
}

impl UnifiedModel {
    /// Creates a unified pseudo-circular cache of `capacity` bytes — the
    /// paper's baseline.
    pub fn new(capacity: u64) -> Self {
        UnifiedModel::with_cache("unified", Box::new(PseudoCircularCache::new(capacity)))
    }

    /// Wraps an arbitrary local policy (LRU, flush-on-full, …) in the
    /// unified-model cost accounting, for local-policy ablations.
    pub fn with_cache(name: impl Into<String>, cache: Box<dyn CodeCache>) -> Self {
        UnifiedModel {
            cache,
            name: name.into(),
            metrics: ModelMetrics::default(),
            ledger: CostLedger::new(),
        }
    }

    /// The underlying cache, for inspection.
    pub fn cache(&self) -> &dyn CodeCache {
        self.cache.as_ref()
    }
}

impl CacheModel for UnifiedModel {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn on_access(&mut self, rec: TraceRecord, now: Time) -> AccessOutcome {
        self.metrics.accesses += 1;
        if self.cache.touch(rec.id, now) {
            self.metrics.hits += 1;
            return AccessOutcome::Hit(Generation::Unified);
        }
        // Conflict (or cold) miss: regenerate the trace and insert it.
        self.metrics.misses += 1;
        self.ledger.charge_miss(rec.size_bytes);
        match self.cache.insert(rec, now) {
            Ok(report) => {
                for victim in &report.evicted {
                    self.ledger.charge_eviction(victim.size_bytes());
                }
            }
            Err(_) => {
                // Trace larger than the whole cache (or blocked by pinned
                // entries): it executes unlinked and is regenerated on
                // every encounter.
                self.metrics.uncachable += 1;
            }
        }
        AccessOutcome::Miss
    }

    fn on_unmap(&mut self, id: TraceId) -> bool {
        match self.cache.remove(id, EvictionCause::Unmapped) {
            Some(info) => {
                self.metrics.unmap_deletions += 1;
                self.ledger.charge_eviction(info.size_bytes());
                true
            }
            None => false,
        }
    }

    fn on_pin(&mut self, id: TraceId, pinned: bool) -> bool {
        self.cache.set_pinned(id, pinned)
    }

    fn metrics(&self) -> &ModelMetrics {
        &self.metrics
    }

    fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    fn resident_bytes(&self) -> u64 {
        self.cache.used_bytes()
    }

    fn capacity_bytes(&self) -> u64 {
        self.cache.capacity().expect("bounded")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_program::Addr;

    fn rec(id: u64, size: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(id), size, Addr::new(0x1000 + id * 0x100))
    }

    #[test]
    fn cold_miss_then_hits() {
        let mut m = UnifiedModel::new(1000);
        assert_eq!(m.on_access(rec(1, 200), Time::ZERO), AccessOutcome::Miss);
        for i in 1..=5 {
            assert_eq!(
                m.on_access(rec(1, 200), Time::from_micros(i)),
                AccessOutcome::Hit(Generation::Unified)
            );
        }
        assert_eq!(m.metrics().accesses, 6);
        assert_eq!(m.metrics().hits, 5);
        assert_eq!(m.metrics().misses, 1);
        assert_eq!(m.ledger().miss_events, 1);
    }

    #[test]
    fn conflict_miss_charges_regeneration_and_eviction() {
        let mut m = UnifiedModel::new(500);
        m.on_access(rec(1, 300), Time::ZERO);
        m.on_access(rec(2, 300), Time::ZERO); // evicts 1
        assert_eq!(m.ledger().eviction_events, 1);
        // Re-access of 1 is a conflict miss.
        assert_eq!(m.on_access(rec(1, 300), Time::ZERO), AccessOutcome::Miss);
        assert_eq!(m.metrics().misses, 3);
    }

    #[test]
    fn unmap_removes_and_charges() {
        let mut m = UnifiedModel::new(1000);
        m.on_access(rec(1, 200), Time::ZERO);
        assert!(m.on_unmap(TraceId::new(1)));
        assert!(!m.on_unmap(TraceId::new(1)));
        assert_eq!(m.metrics().unmap_deletions, 1);
        assert_eq!(m.ledger().eviction_events, 1);
        assert_eq!(m.on_access(rec(1, 200), Time::ZERO), AccessOutcome::Miss);
    }

    #[test]
    fn oversized_trace_counts_uncachable() {
        let mut m = UnifiedModel::new(100);
        assert_eq!(m.on_access(rec(1, 200), Time::ZERO), AccessOutcome::Miss);
        assert_eq!(m.on_access(rec(1, 200), Time::ZERO), AccessOutcome::Miss);
        assert_eq!(m.metrics().uncachable, 2);
        assert_eq!(m.resident_bytes(), 0);
    }

    #[test]
    fn pinning_protects_entry() {
        let mut m = UnifiedModel::new(400);
        m.on_access(rec(1, 300), Time::ZERO);
        assert!(m.on_pin(TraceId::new(1), true));
        // Without the pin, trace 2 would evict trace 1; with it, trace 2
        // finds no space and trace 1 survives.
        m.on_access(rec(2, 200), Time::ZERO);
        assert_eq!(m.metrics().uncachable, 1);
        assert!(m.on_access(rec(1, 300), Time::ZERO).is_hit());
        // Unpinning restores normal eviction.
        assert!(m.on_pin(TraceId::new(1), false));
        m.on_access(rec(2, 200), Time::ZERO);
        assert!(!m.on_access(rec(1, 300), Time::ZERO).is_hit());
    }
}
