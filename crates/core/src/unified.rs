//! The unified-cache baseline: one pseudo-circular trace cache.
//!
//! The paper's baseline for every benchmark is a single pseudo-circular
//! cache sized at `0.5 × maxCache`, where `maxCache` is the unbounded
//! size that benchmark reached (Section 6).

use gencache_cache::{CodeCache, EvictionCause, PseudoCircularCache, TraceId, TraceRecord};
use gencache_obs::{CacheEvent, FrontendOp, NullObserver, Observer, Region};
use gencache_program::Time;

use crate::cost::CostLedger;
use crate::model::{AccessOutcome, CacheModel, Generation, ModelMetrics};

/// A single bounded pseudo-circular trace cache with miss-cost accounting.
///
/// # Examples
///
/// ```
/// use gencache_cache::{TraceId, TraceRecord};
/// use gencache_core::{CacheModel, UnifiedModel};
/// use gencache_program::{Addr, Time};
///
/// let mut model = UnifiedModel::new(1024);
/// let rec = TraceRecord::new(TraceId::new(1), 242, Addr::new(0x1000));
/// assert!(!model.on_access(rec, Time::ZERO).is_hit()); // cold miss
/// assert!(model.on_access(rec, Time::from_micros(1)).is_hit());
/// assert_eq!(model.metrics().misses, 1);
/// ```
#[derive(Debug)]
pub struct UnifiedModel<O: Observer = NullObserver> {
    cache: Box<dyn CodeCache>,
    name: String,
    metrics: ModelMetrics,
    ledger: CostLedger,
    observer: O,
}

impl UnifiedModel {
    /// Creates a unified pseudo-circular cache of `capacity` bytes — the
    /// paper's baseline.
    pub fn new(capacity: u64) -> Self {
        UnifiedModel::with_cache("unified", Box::new(PseudoCircularCache::new(capacity)))
    }

    /// Wraps an arbitrary local policy (LRU, flush-on-full, …) in the
    /// unified-model cost accounting, for local-policy ablations.
    pub fn with_cache(name: impl Into<String>, cache: Box<dyn CodeCache>) -> Self {
        UnifiedModel::with_cache_observed(name, cache, NullObserver)
    }
}

impl<O: Observer> UnifiedModel<O> {
    /// Like [`UnifiedModel::new`], with `observer` receiving every
    /// [`CacheEvent`] the model emits.
    pub fn observed(capacity: u64, observer: O) -> Self {
        UnifiedModel::with_cache_observed(
            "unified",
            Box::new(PseudoCircularCache::new(capacity)),
            observer,
        )
    }

    /// Like [`UnifiedModel::with_cache`], with an attached observer.
    pub fn with_cache_observed(
        name: impl Into<String>,
        cache: Box<dyn CodeCache>,
        observer: O,
    ) -> Self {
        UnifiedModel {
            cache,
            name: name.into(),
            metrics: ModelMetrics::default(),
            ledger: CostLedger::new(),
            observer,
        }
    }

    /// The underlying cache, for inspection.
    pub fn cache(&self) -> &dyn CodeCache {
        self.cache.as_ref()
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the attached observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Consumes the model, returning the observer (to finish a sink or
    /// extract a report).
    pub fn into_observer(self) -> O {
        self.observer
    }
}

impl<O: Observer> CacheModel for UnifiedModel<O> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn on_access(&mut self, rec: TraceRecord, now: Time) -> AccessOutcome {
        self.metrics.accesses += 1;
        let prev_access = if self.observer.enabled() {
            self.cache.entry(rec.id).map(|e| e.last_access)
        } else {
            None
        };
        if self.cache.touch(rec.id, now) {
            self.metrics.hits += 1;
            if self.observer.enabled() {
                self.observer.on_event(&CacheEvent::Hit {
                    region: Region::Unified,
                    trace: rec.id,
                    reuse_us: prev_access.map_or(0, |t| now.saturating_micros_since(t)),
                    time: now,
                });
            }
            return AccessOutcome::Hit(Generation::Unified);
        }
        // Conflict (or cold) miss: regenerate the trace and insert it.
        self.metrics.misses += 1;
        self.ledger.charge_miss(rec.size_bytes);
        if self.observer.enabled() {
            self.observer.on_event(&CacheEvent::Miss {
                trace: rec.id,
                bytes: rec.size_bytes,
                time: now,
            });
        }
        match self.cache.insert(rec, now) {
            Ok(report) => {
                for victim in &report.evicted {
                    self.ledger.charge_eviction(victim.size_bytes());
                    if self.observer.enabled() {
                        self.observer.on_event(&CacheEvent::Evict {
                            region: Region::Unified,
                            trace: victim.entry.id(),
                            bytes: victim.entry.size_bytes(),
                            cause: victim.cause,
                            age_us: now.saturating_micros_since(victim.entry.insert_time),
                            idle_us: now.saturating_micros_since(victim.entry.last_access),
                            time: now,
                        });
                    }
                }
                if self.observer.enabled() {
                    if report.pointer_resets > 0 {
                        self.observer.on_event(&CacheEvent::PointerReset {
                            region: Region::Unified,
                            resets: report.pointer_resets,
                            time: now,
                        });
                    }
                    self.observer.on_event(&CacheEvent::Insert {
                        region: Region::Unified,
                        trace: rec.id,
                        bytes: rec.size_bytes,
                        used: self.cache.used_bytes(),
                        time: now,
                    });
                }
            }
            Err(_) => {
                // Trace larger than the whole cache (or blocked by pinned
                // entries): it executes unlinked and is regenerated on
                // every encounter.
                self.metrics.uncachable += 1;
            }
        }
        AccessOutcome::Miss
    }

    fn on_unmap(&mut self, id: TraceId, now: Time) -> bool {
        match self.cache.remove(id, EvictionCause::Unmapped) {
            Some(info) => {
                self.metrics.unmap_deletions += 1;
                self.ledger.charge_eviction(info.size_bytes());
                if self.observer.enabled() {
                    self.observer.on_event(&CacheEvent::Evict {
                        region: Region::Unified,
                        trace: info.id(),
                        bytes: info.size_bytes(),
                        cause: EvictionCause::Unmapped,
                        age_us: now.saturating_micros_since(info.insert_time),
                        idle_us: now.saturating_micros_since(info.last_access),
                        time: now,
                    });
                }
                true
            }
            None => {
                if self.observer.enabled() {
                    self.observer.on_event(&CacheEvent::Noop {
                        op: FrontendOp::Unmap,
                        trace: id,
                        time: now,
                    });
                }
                false
            }
        }
    }

    fn on_pin(&mut self, id: TraceId, pinned: bool, now: Time) -> bool {
        let changed = self.cache.set_pinned(id, pinned);
        if self.observer.enabled() {
            let event = if changed {
                if pinned {
                    CacheEvent::Pin {
                        region: Region::Unified,
                        trace: id,
                        time: now,
                    }
                } else {
                    CacheEvent::Unpin {
                        region: Region::Unified,
                        trace: id,
                        time: now,
                    }
                }
            } else {
                CacheEvent::Noop {
                    op: if pinned {
                        FrontendOp::Pin
                    } else {
                        FrontendOp::Unpin
                    },
                    trace: id,
                    time: now,
                }
            };
            self.observer.on_event(&event);
        }
        changed
    }

    fn metrics(&self) -> &ModelMetrics {
        &self.metrics
    }

    fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    fn resident_bytes(&self) -> u64 {
        self.cache.used_bytes()
    }

    fn capacity_bytes(&self) -> u64 {
        self.cache.capacity().expect("bounded")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_program::Addr;

    fn rec(id: u64, size: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(id), size, Addr::new(0x1000 + id * 0x100))
    }

    #[test]
    fn cold_miss_then_hits() {
        let mut m = UnifiedModel::new(1000);
        assert_eq!(m.on_access(rec(1, 200), Time::ZERO), AccessOutcome::Miss);
        for i in 1..=5 {
            assert_eq!(
                m.on_access(rec(1, 200), Time::from_micros(i)),
                AccessOutcome::Hit(Generation::Unified)
            );
        }
        assert_eq!(m.metrics().accesses, 6);
        assert_eq!(m.metrics().hits, 5);
        assert_eq!(m.metrics().misses, 1);
        assert_eq!(m.ledger().miss_events, 1);
    }

    #[test]
    fn conflict_miss_charges_regeneration_and_eviction() {
        let mut m = UnifiedModel::new(500);
        m.on_access(rec(1, 300), Time::ZERO);
        m.on_access(rec(2, 300), Time::ZERO); // evicts 1
        assert_eq!(m.ledger().eviction_events, 1);
        // Re-access of 1 is a conflict miss.
        assert_eq!(m.on_access(rec(1, 300), Time::ZERO), AccessOutcome::Miss);
        assert_eq!(m.metrics().misses, 3);
    }

    #[test]
    fn unmap_removes_and_charges() {
        let mut m = UnifiedModel::new(1000);
        m.on_access(rec(1, 200), Time::ZERO);
        assert!(m.on_unmap(TraceId::new(1), Time::from_micros(1)));
        assert!(!m.on_unmap(TraceId::new(1), Time::from_micros(2)));
        assert_eq!(m.metrics().unmap_deletions, 1);
        assert_eq!(m.ledger().eviction_events, 1);
        assert_eq!(m.on_access(rec(1, 200), Time::ZERO), AccessOutcome::Miss);
    }

    #[test]
    fn oversized_trace_counts_uncachable() {
        let mut m = UnifiedModel::new(100);
        assert_eq!(m.on_access(rec(1, 200), Time::ZERO), AccessOutcome::Miss);
        assert_eq!(m.on_access(rec(1, 200), Time::ZERO), AccessOutcome::Miss);
        assert_eq!(m.metrics().uncachable, 2);
        assert_eq!(m.resident_bytes(), 0);
    }

    #[test]
    fn pinning_protects_entry() {
        let mut m = UnifiedModel::new(400);
        m.on_access(rec(1, 300), Time::ZERO);
        assert!(m.on_pin(TraceId::new(1), true, Time::ZERO));
        // Without the pin, trace 2 would evict trace 1; with it, trace 2
        // finds no space and trace 1 survives.
        m.on_access(rec(2, 200), Time::ZERO);
        assert_eq!(m.metrics().uncachable, 1);
        assert!(m.on_access(rec(1, 300), Time::ZERO).is_hit());
        // Unpinning restores normal eviction.
        assert!(m.on_pin(TraceId::new(1), false, Time::ZERO));
        m.on_access(rec(2, 200), Time::ZERO);
        assert!(!m.on_access(rec(1, 300), Time::ZERO).is_hit());
    }
}
