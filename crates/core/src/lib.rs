//! # gencache-core
//!
//! Generational code-cache management — the core contribution of
//! *Generational Cache Management of Code Traces in Dynamic Optimization
//! Systems* (Hazelwood & Smith, MICRO 2003), reproduced as a library.
//!
//! A dynamic optimizer's trace cache holds code traces whose lifetimes are
//! strongly bimodal: most are either short-lived (dead within 20% of the
//! program run) or long-lived (live for more than 80% of it). A single
//! FIFO cache therefore keeps re-evicting its long-lived tenants to make
//! room for transient arrivals. The paper's remedy mirrors generational
//! garbage collection: split the trace cache into a **nursery**, a
//! **probation** cache, and a **persistent** cache, and promote traces as
//! they prove their longevity.
//!
//! This crate provides:
//!
//! * [`GenerationalModel`] — the three-cache hierarchy with the promotion
//!   algorithm of Figure 8 (and the counter-free promote-on-hit variant);
//! * [`UnifiedModel`] — the single pseudo-circular baseline;
//! * [`CacheModel`] — the common trait the replay harness drives;
//! * the Table 2 instruction-overhead [`cost`] model;
//! * [`LifetimeTracker`] — Equation 2 lifetime measurement and the
//!   Figure 6 histogram.
//!
//! ```
//! use gencache_cache::{TraceId, TraceRecord};
//! use gencache_core::{
//!     overhead_ratio, CacheModel, GenerationalConfig, GenerationalModel,
//!     PromotionPolicy, Proportions, UnifiedModel,
//! };
//! use gencache_program::{Addr, Time};
//!
//! // Same total budget for both organizations, per the paper.
//! let total = 64 * 1024;
//! let mut unified = UnifiedModel::new(total);
//! let mut generational = GenerationalModel::new(GenerationalConfig::new(
//!     total,
//!     Proportions::best_overall(),               // 45% — 10% — 45%
//!     PromotionPolicy::OnHit { hits: 1 },
//! ));
//!
//! // Replay the same accesses into both.
//! for step in 0..1000u64 {
//!     let id = step % 50;
//!     let rec = TraceRecord::new(TraceId::new(id), 242, Addr::new(0x1000 + id));
//!     let now = Time::from_micros(step);
//!     unified.on_access(rec, now);
//!     generational.on_access(rec, now);
//! }
//!
//! // Equation 3: instruction-overhead ratio.
//! let ratio = overhead_ratio(generational.ledger(), unified.ledger());
//! assert!(ratio > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adaptive;
mod config;
pub mod cost;
mod lifetime;
mod manager;
mod model;
mod replay;
mod unified;

pub use adaptive::{
    AdaptiveModel, Candidate, CandidateSet, SwitchKind, SwitchRecord, SwitchReport,
    TemperatureTracker, DEFAULT_EPOCH_ACCESSES, MAX_CANDIDATES,
};
pub use config::{GenerationalConfig, PromotionPolicy, Proportions};
pub use cost::{overhead_ratio, CostLedger};
pub use lifetime::{LifetimeHistogram, LifetimeTracker};
pub use manager::GenerationalModel;
pub use model::{AccessOutcome, CacheModel, Generation, ModelMetrics};
pub use replay::replay_trace;
pub use unified::UnifiedModel;
