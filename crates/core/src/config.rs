//! Configuration of a generational code cache.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How traces graduate from the probation cache to the persistent cache
/// (Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PromotionPolicy {
    /// Figure 8's algorithm: when a probation trace is *evicted*, promote
    /// it if it was executed more than `threshold` times while on
    /// probation; otherwise delete it.
    OnEviction {
        /// Minimum probation-cache executions required for promotion.
        threshold: u64,
    },
    /// The counter-free variant: the `hits`-th execution of a probation
    /// trace immediately promotes it to the persistent cache. The paper
    /// found `hits == 1` performs best with a small (10%) probation cache
    /// and notes it "obviates the need for complex analysis".
    OnHit {
        /// Number of probation executions that triggers promotion.
        hits: u64,
    },
}

impl fmt::Display for PromotionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PromotionPolicy::OnEviction { threshold } => {
                write!(f, "promote-on-eviction(>{threshold} execs)")
            }
            PromotionPolicy::OnHit { hits } => write!(f, "promote-on-hit({hits})"),
        }
    }
}

/// Size proportions of the three generational caches. Must sum to 1.
///
/// # Examples
///
/// ```
/// use gencache_core::Proportions;
///
/// let best = Proportions::best_overall();
/// assert_eq!(best.to_string(), "45-10-45");
/// assert!((best.nursery + best.probation + best.persistent - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Proportions {
    /// Fraction of total capacity given to the nursery.
    pub nursery: f64,
    /// Fraction given to the probation cache.
    pub probation: f64,
    /// Fraction given to the persistent cache.
    pub persistent: f64,
}

impl Proportions {
    /// Creates a proportion triple.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is negative or the triple does not sum to 1
    /// within 1e-6.
    pub fn new(nursery: f64, probation: f64, persistent: f64) -> Self {
        assert!(
            nursery >= 0.0 && probation >= 0.0 && persistent >= 0.0,
            "proportions must be non-negative"
        );
        let sum = nursery + probation + persistent;
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "proportions must sum to 1, got {sum}"
        );
        Proportions {
            nursery,
            probation,
            persistent,
        }
    }

    /// The even 33%–33%–33% split of Figure 9's first configuration.
    pub fn even_thirds() -> Self {
        Proportions::new(1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0)
    }

    /// The 45%–10%–45% split the paper found best overall.
    pub fn best_overall() -> Self {
        Proportions::new(0.45, 0.10, 0.45)
    }

    /// A probation-heavy 25%–50%–25% split, the third configuration we
    /// sweep (benchmarks like `eon`, `vpr` and `applu` preferred a larger
    /// probation cache in the paper).
    pub fn probation_heavy() -> Self {
        Proportions::new(0.25, 0.50, 0.25)
    }
}

impl fmt::Display for Proportions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0}-{:.0}-{:.0}",
            self.nursery * 100.0,
            self.probation * 100.0,
            self.persistent * 100.0
        )
    }
}

/// Full configuration of a generational cache hierarchy.
///
/// # Examples
///
/// ```
/// use gencache_core::{GenerationalConfig, Proportions, PromotionPolicy};
///
/// // The paper's best configuration over a 1 MB total budget.
/// let config = GenerationalConfig::new(
///     1 << 20,
///     Proportions::best_overall(),
///     PromotionPolicy::OnHit { hits: 1 },
/// );
/// assert_eq!(config.nursery_bytes + config.probation_bytes
///            + config.persistent_bytes, 1 << 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationalConfig {
    /// Bytes allotted to the nursery cache.
    pub nursery_bytes: u64,
    /// Bytes allotted to the probation cache.
    pub probation_bytes: u64,
    /// Bytes allotted to the persistent cache.
    pub persistent_bytes: u64,
    /// The probation→persistent promotion rule.
    pub promotion: PromotionPolicy,
}

impl GenerationalConfig {
    /// Splits `total_bytes` by `proportions`, rounding so the three caches
    /// sum exactly to `total_bytes` (the paper's evaluation compares
    /// against a unified cache of identical total size, so exact
    /// accounting matters).
    pub fn new(total_bytes: u64, proportions: Proportions, promotion: PromotionPolicy) -> Self {
        let nursery_bytes = (total_bytes as f64 * proportions.nursery).round() as u64;
        let probation_bytes = (total_bytes as f64 * proportions.probation).round() as u64;
        let persistent_bytes = total_bytes
            .saturating_sub(nursery_bytes)
            .saturating_sub(probation_bytes);
        GenerationalConfig {
            nursery_bytes,
            probation_bytes,
            persistent_bytes,
            promotion,
        }
    }

    /// Total bytes across the three caches.
    pub fn total_bytes(&self) -> u64 {
        self.nursery_bytes + self.probation_bytes + self.persistent_bytes
    }

    /// The three configurations evaluated in Figure 9, over a total budget:
    /// 33/33/33 promoting evictees with >10 executions, 45/10/45 promoting
    /// on the first hit, and 25/50/25 promoting evictees with >5.
    pub fn figure9_configs(total_bytes: u64) -> [GenerationalConfig; 3] {
        [
            GenerationalConfig::new(
                total_bytes,
                Proportions::even_thirds(),
                PromotionPolicy::OnEviction { threshold: 10 },
            ),
            GenerationalConfig::new(
                total_bytes,
                Proportions::best_overall(),
                PromotionPolicy::OnHit { hits: 1 },
            ),
            GenerationalConfig::new(
                total_bytes,
                Proportions::probation_heavy(),
                PromotionPolicy::OnEviction { threshold: 5 },
            ),
        ]
    }
}

impl fmt::Display for GenerationalConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_bytes() as f64;
        if total > 0.0 {
            write!(
                f,
                "{:.0}-{:.0}-{:.0} {}",
                self.nursery_bytes as f64 / total * 100.0,
                self.probation_bytes as f64 / total * 100.0,
                self.persistent_bytes as f64 / total * 100.0,
                self.promotion
            )
        } else {
            write!(f, "empty {}", self.promotion)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportions_validate() {
        let p = Proportions::new(0.45, 0.10, 0.45);
        assert_eq!(p.to_string(), "45-10-45");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_sum_rejected() {
        let _ = Proportions::new(0.5, 0.5, 0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rejected() {
        let _ = Proportions::new(-0.5, 1.0, 0.5);
    }

    #[test]
    fn config_sizes_sum_exactly() {
        for total in [999u64, 1000, 1001, 12345, 1 << 20] {
            let c = GenerationalConfig::new(
                total,
                Proportions::even_thirds(),
                PromotionPolicy::OnHit { hits: 1 },
            );
            assert_eq!(c.total_bytes(), total, "total {total}");
        }
    }

    #[test]
    fn figure9_configs_share_budget() {
        for c in GenerationalConfig::figure9_configs(1 << 20) {
            assert_eq!(c.total_bytes(), 1 << 20);
        }
    }

    #[test]
    fn display_forms() {
        let c = GenerationalConfig::new(
            1000,
            Proportions::best_overall(),
            PromotionPolicy::OnHit { hits: 1 },
        );
        assert_eq!(c.to_string(), "45-10-45 promote-on-hit(1)");
        let c = GenerationalConfig::new(
            1000,
            Proportions::even_thirds(),
            PromotionPolicy::OnEviction { threshold: 10 },
        );
        assert!(c.to_string().contains("promote-on-eviction"));
    }
}
