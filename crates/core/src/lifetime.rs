//! Trace lifetime measurement (Section 5.1, Equation 2, Figure 6).
//!
//! A trace's lifetime is the span between its first and last execution,
//! normalized by total application execution time:
//!
//! ```text
//! lifetime_i = (lastExecution_i − firstExecution_i) / totalExecutionTime
//! ```
//!
//! The paper's motivating observation is that lifetimes are *U-shaped*:
//! most traces are either short-lived (< 20% of execution) or long-lived
//! (> 80%), with few in between — which is what makes a nursery/persistent
//! split effective.

use std::collections::HashMap;

use gencache_cache::TraceId;
use gencache_program::Time;
use serde::{Deserialize, Serialize};

/// Records first/last execution times of every trace during a run.
///
/// # Examples
///
/// ```
/// use gencache_cache::TraceId;
/// use gencache_core::LifetimeTracker;
/// use gencache_program::Time;
///
/// let mut tracker = LifetimeTracker::new();
/// tracker.record(TraceId::new(1), Time::from_secs_f64(0.0));
/// tracker.record(TraceId::new(1), Time::from_secs_f64(9.0));
/// let hist = tracker.histogram(Time::from_secs_f64(10.0));
/// assert_eq!(hist.buckets()[4], 1); // 90% lifetime → the 80–100% bucket
/// ```
#[derive(Debug, Clone, Default)]
pub struct LifetimeTracker {
    spans: HashMap<TraceId, (Time, Time)>,
}

impl LifetimeTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        LifetimeTracker::default()
    }

    /// Records one execution of `id` at `now`.
    pub fn record(&mut self, id: TraceId, now: Time) {
        self.spans
            .entry(id)
            .and_modify(|(first, last)| {
                if now < *first {
                    *first = now;
                }
                if now > *last {
                    *last = now;
                }
            })
            .or_insert((now, now));
    }

    /// Number of distinct traces observed.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Returns `true` if no executions were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The normalized lifetime of one trace (Equation 2), or `None` if the
    /// trace was never recorded. A trace executed once has lifetime 0.
    pub fn lifetime_of(&self, id: TraceId, total: Time) -> Option<f64> {
        let (first, last) = self.spans.get(&id)?;
        if total.as_micros() == 0 {
            return Some(0.0);
        }
        Some(last.saturating_micros_since(*first) as f64 / total.as_micros() as f64)
    }

    /// Builds the Figure 6 histogram: the unweighted (static) fraction of
    /// traces in each of five 20%-wide lifetime buckets.
    pub fn histogram(&self, total: Time) -> LifetimeHistogram {
        let mut buckets = [0u64; 5];
        for id in self.spans.keys() {
            let lifetime = self
                .lifetime_of(*id, total)
                .expect("key exists")
                .clamp(0.0, 1.0);
            // 1.0 falls in the last bucket.
            let idx = ((lifetime * 5.0) as usize).min(4);
            buckets[idx] += 1;
        }
        LifetimeHistogram { buckets }
    }
}

/// A five-bucket trace-lifetime histogram: `<20%`, `20–40%`, `40–60%`,
/// `60–80%`, `>80%` of total execution time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifetimeHistogram {
    buckets: [u64; 5],
}

impl LifetimeHistogram {
    /// Raw trace counts per bucket.
    pub fn buckets(&self) -> &[u64; 5] {
        &self.buckets
    }

    /// Total traces across buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Per-bucket fractions (each in `[0, 1]`); all zeros when empty.
    pub fn fractions(&self) -> [f64; 5] {
        let total = self.total();
        if total == 0 {
            return [0.0; 5];
        }
        let mut out = [0.0; 5];
        for (o, b) in out.iter_mut().zip(self.buckets) {
            *o = b as f64 / total as f64;
        }
        out
    }

    /// Fraction of short-lived traces (< 20% lifetime).
    pub fn short_lived_fraction(&self) -> f64 {
        self.fractions()[0]
    }

    /// Fraction of long-lived traces (> 80% lifetime).
    pub fn long_lived_fraction(&self) -> f64 {
        self.fractions()[4]
    }

    /// The paper's U-shape criterion: the two extreme buckets together
    /// dominate the three middle buckets.
    pub fn is_u_shaped(&self) -> bool {
        let f = self.fractions();
        f[0] + f[4] > f[1] + f[2] + f[3]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> Time {
        Time::from_secs_f64(secs)
    }

    #[test]
    fn single_execution_has_zero_lifetime() {
        let mut tr = LifetimeTracker::new();
        tr.record(TraceId::new(1), t(5.0));
        assert_eq!(tr.lifetime_of(TraceId::new(1), t(10.0)), Some(0.0));
        assert_eq!(tr.lifetime_of(TraceId::new(2), t(10.0)), None);
    }

    #[test]
    fn lifetime_is_span_over_total() {
        let mut tr = LifetimeTracker::new();
        tr.record(TraceId::new(1), t(2.0));
        tr.record(TraceId::new(1), t(4.5));
        tr.record(TraceId::new(1), t(7.0));
        assert!((tr.lifetime_of(TraceId::new(1), t(10.0)).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn out_of_order_records_handled() {
        let mut tr = LifetimeTracker::new();
        tr.record(TraceId::new(1), t(7.0));
        tr.record(TraceId::new(1), t(2.0));
        assert!((tr.lifetime_of(TraceId::new(1), t(10.0)).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets() {
        let mut tr = LifetimeTracker::new();
        // Lifetime 0.1 → bucket 0.
        tr.record(TraceId::new(1), t(0.0));
        tr.record(TraceId::new(1), t(1.0));
        // Lifetime 0.5 → bucket 2.
        tr.record(TraceId::new(2), t(2.0));
        tr.record(TraceId::new(2), t(7.0));
        // Lifetime 1.0 → clamped into bucket 4.
        tr.record(TraceId::new(3), t(0.0));
        tr.record(TraceId::new(3), t(10.0));
        let h = tr.histogram(t(10.0));
        assert_eq!(*h.buckets(), [1, 0, 1, 0, 1]);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn middle_heavy_distribution_is_not_u_shaped() {
        let mut tr = LifetimeTracker::new();
        // Three middle-lifetime traces (~50%), one short-lived.
        for i in 0..3 {
            tr.record(TraceId::new(i), t(2.0));
            tr.record(TraceId::new(i), t(7.0));
        }
        tr.record(TraceId::new(3), t(1.0));
        tr.record(TraceId::new(3), t(1.5));
        assert!(!tr.histogram(t(10.0)).is_u_shaped());
    }

    #[test]
    fn u_shape_detection() {
        let mut tr = LifetimeTracker::new();
        // Three short-lived, two long-lived, one middle.
        for i in 0..3 {
            tr.record(TraceId::new(i), t(1.0));
            tr.record(TraceId::new(i), t(1.5));
        }
        for i in 3..5 {
            tr.record(TraceId::new(i), t(0.5));
            tr.record(TraceId::new(i), t(9.5));
        }
        tr.record(TraceId::new(5), t(2.0));
        tr.record(TraceId::new(5), t(7.0));
        let h = tr.histogram(t(10.0));
        assert!(h.is_u_shaped());
        assert!((h.short_lived_fraction() - 0.5).abs() < 1e-9);
        assert!((h.long_lived_fraction() - 2.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn zero_total_time_is_safe() {
        let mut tr = LifetimeTracker::new();
        tr.record(TraceId::new(1), t(0.0));
        assert_eq!(tr.lifetime_of(TraceId::new(1), Time::ZERO), Some(0.0));
        let h = tr.histogram(Time::ZERO);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn empty_histogram_fractions() {
        let h = LifetimeTracker::new().histogram(t(10.0));
        assert_eq!(h.fractions(), [0.0; 5]);
        assert_eq!(h.total(), 0);
    }
}
