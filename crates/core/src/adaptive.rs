//! The adaptive policy engine: online selection among §6 grid
//! configurations, judged on the regret scale.
//!
//! The paper fixes one cache configuration per run, but its own Section
//! 6 sweep shows the best proportions and promotion policy vary by
//! workload — and, for phased workloads, *within* a run. This module
//! closes the loop the ROADMAP calls the "adaptive policy engine":
//!
//! * [`AdaptiveModel`] wraps a [`GenerationalModel`] plus a
//!   [`CandidateSet`] of §6 grid configurations. It folds its own access
//!   stream into fixed access-count **epochs** and runs the same
//!   EWMA-baselined Page–Hinkley and churn-burst detector the windowed
//!   annotator uses (`gencache_obs::detect_drift`, same public
//!   constants) as an *online* controller.
//! * When the detector fires, the controller **probes**: each candidate
//!   is installed for one epoch (a deterministic, seedless round-robin
//!   audition from a cold cache) and the candidate with the lowest probe
//!   miss rate is committed. Ties break toward the lowest candidate
//!   index, so replays are bit-reproducible at any job count.
//! * Every install is a [`GenerationalModel::reconfigure`] — a
//!   whole-hierarchy flush emitting ordinary `Evict` events with
//!   `EvictionCause::Flush` (which the regret observer scores as
//!   *forced*, i.e. regret-free) — plus a
//!   [`CacheEvent::PolicySwap`] marker so `explain` can narrate the
//!   decision.
//! * The first drift detection also arms a [`TemperatureTracker`], a
//!   TRRIP-style re-reference interval predictor whose "hot" verdicts
//!   feed the generational manager's promotion decisions. On a
//!   stationary stream the detector never fires, nothing is armed, and
//!   the model is byte-for-byte its initial static configuration.

use std::collections::{HashMap, HashSet};

use gencache_cache::{TraceId, TraceRecord};
use gencache_obs::{
    CacheEvent, NullObserver, Observer, CHURN_BURST_FACTOR, CHURN_MIN_REMISSES, EWMA_ALPHA,
    PH_DELTA, PH_LAMBDA,
};
use gencache_program::Time;
use serde::{Deserialize, Serialize};

use crate::config::{GenerationalConfig, PromotionPolicy, Proportions};
use crate::cost::CostLedger;
use crate::manager::GenerationalModel;
use crate::model::{AccessOutcome, CacheModel, ModelMetrics};

/// Default controller epoch width, in accesses. Small enough to react
/// within a program phase, large enough that one epoch's miss rate is a
/// meaningful sample.
pub const DEFAULT_EPOCH_ACCESSES: u64 = 256;

/// Maximum candidates an [`AdaptiveModel`] can audition. The set is a
/// fixed-size inline array so spec values stay `Copy`.
pub const MAX_CANDIDATES: usize = 8;

/// EWMA smoothing factor for per-trace re-reference interval prediction.
const TEMP_ALPHA: f64 = 0.5;
/// A trace's initial predicted re-reference interval, as a multiple of
/// the hot threshold — the RRIP convention of inserting with a *long*
/// predicted interval so only demonstrated reuse earns "hot".
const TEMP_COLD_FACTOR: f64 = 2.0;

/// TRRIP-style per-trace temperature: an EWMA predictor of each trace's
/// re-reference interval, measured in accesses of the whole stream.
///
/// A trace whose predicted interval is at most the `hot_gap` threshold
/// is **hot**: the generational manager promotes hot probation traces
/// to the persistent cache even when the configured
/// [`PromotionPolicy`] alone would delete them. Detached by default;
/// the adaptive controller arms it at the first drift detection.
#[derive(Debug, Clone)]
pub struct TemperatureTracker {
    hot_gap: u64,
    tick: u64,
    hot_promotions: u64,
    states: HashMap<TraceId, TempState>,
}

#[derive(Debug, Clone, Copy)]
struct TempState {
    last_tick: u64,
    pred_gap: f64,
}

impl TemperatureTracker {
    /// A tracker that calls a trace hot when its predicted re-reference
    /// interval is at most `hot_gap` accesses (minimum 1).
    pub fn new(hot_gap: u64) -> Self {
        TemperatureTracker {
            hot_gap: hot_gap.max(1),
            tick: 0,
            hot_promotions: 0,
            states: HashMap::new(),
        }
    }

    /// Feeds one access of `id` (hit or miss — re-reference intervals
    /// are a property of the request stream, not of residency).
    pub fn observe(&mut self, id: TraceId) {
        self.tick += 1;
        let cold = TEMP_COLD_FACTOR * self.hot_gap as f64;
        match self.states.get_mut(&id) {
            Some(s) => {
                let gap = (self.tick - s.last_tick) as f64;
                s.pred_gap += TEMP_ALPHA * (gap - s.pred_gap);
                s.last_tick = self.tick;
            }
            None => {
                self.states.insert(
                    id,
                    TempState {
                        last_tick: self.tick,
                        pred_gap: cold,
                    },
                );
            }
        }
    }

    /// Whether `id`'s predicted re-reference interval clears the hot
    /// threshold.
    pub fn is_hot(&self, id: TraceId) -> bool {
        self.states
            .get(&id)
            .is_some_and(|s| s.pred_gap <= self.hot_gap as f64)
    }

    /// Called by the manager when the hot verdict promoted a trace the
    /// policy alone would not have.
    pub fn note_hot_promotion(&mut self) {
        self.hot_promotions += 1;
    }

    /// Promotions attributable to the temperature signal alone.
    pub fn hot_promotions(&self) -> u64 {
        self.hot_promotions
    }
}

/// One generational configuration the adaptive controller can install:
/// a proportions triple plus a promotion policy, drawn from the §6
/// grid's vocabulary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Nursery / probation / persistent split.
    pub proportions: Proportions,
    /// Probation→persistent promotion rule.
    pub policy: PromotionPolicy,
}

impl Candidate {
    /// A candidate from its two parts.
    pub fn new(proportions: Proportions, policy: PromotionPolicy) -> Self {
        Candidate {
            proportions,
            policy,
        }
    }

    /// The spec-grammar body for this candidate, e.g. `45-10-45@hit1` —
    /// the same grammar `simulate --spec gen-…` parses.
    pub fn label(&self) -> String {
        let policy = match self.policy {
            PromotionPolicy::OnHit { hits } => format!("hit{hits}"),
            PromotionPolicy::OnEviction { threshold } => format!("evict{threshold}"),
        };
        format!("{}@{policy}", self.proportions)
    }

    /// The concrete configuration over a total byte budget.
    pub fn config(&self, total_bytes: u64) -> GenerationalConfig {
        GenerationalConfig::new(total_bytes, self.proportions, self.policy)
    }
}

/// An ordered, inline (and therefore `Copy`) set of 1–[`MAX_CANDIDATES`]
/// candidates. Index 0 is the initial configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateSet {
    slots: [Candidate; MAX_CANDIDATES],
    len: u8,
}

impl CandidateSet {
    /// Builds a set from a non-empty slice of at most
    /// [`MAX_CANDIDATES`] candidates.
    pub fn new(candidates: &[Candidate]) -> Result<Self, String> {
        if candidates.is_empty() {
            return Err("adaptive spec needs at least one candidate".to_string());
        }
        if candidates.len() > MAX_CANDIDATES {
            return Err(format!(
                "adaptive spec allows at most {MAX_CANDIDATES} candidates, got {}",
                candidates.len()
            ));
        }
        // Unused slots repeat the first candidate so equal candidate
        // lists always compare equal.
        let mut slots = [candidates[0]; MAX_CANDIDATES];
        slots[..candidates.len()].copy_from_slice(candidates);
        Ok(CandidateSet {
            slots,
            len: candidates.len() as u8,
        })
    }

    /// The default audition roster, drawn from the §6 grid: the paper's
    /// best overall layout, the probation-heavy sweep point, and the
    /// nursery- and persistent-leaning corners of the proportion grid.
    pub fn default_set() -> Self {
        CandidateSet::new(&[
            Candidate::new(Proportions::best_overall(), PromotionPolicy::OnHit { hits: 1 }),
            Candidate::new(
                Proportions::probation_heavy(),
                PromotionPolicy::OnEviction { threshold: 5 },
            ),
            Candidate::new(
                Proportions::new(0.60, 0.10, 0.30),
                PromotionPolicy::OnHit { hits: 1 },
            ),
            Candidate::new(
                Proportions::new(0.30, 0.10, 0.60),
                PromotionPolicy::OnEviction { threshold: 1 },
            ),
        ])
        .expect("default set is within bounds")
    }

    /// Number of candidates.
    #[allow(clippy::len_without_is_empty)] // a set is never empty
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// The candidates, in order.
    pub fn as_slice(&self) -> &[Candidate] {
        &self.slots[..self.len()]
    }

    /// The `i`-th candidate.
    pub fn get(&self, i: usize) -> Candidate {
        self.slots[..self.len()][i]
    }

    /// The candidate labels joined with `+` — the body of the
    /// `adaptive:<body>` spec grammar.
    pub fn body(&self) -> String {
        let labels: Vec<String> = self.as_slice().iter().map(Candidate::label).collect();
        labels.join("+")
    }

    /// The canonical spec label: `adaptive` for the default set,
    /// `adaptive:<body>` otherwise.
    pub fn label(&self) -> String {
        if *self == CandidateSet::default_set() {
            "adaptive".to_string()
        } else {
            format!("adaptive:{}", self.body())
        }
    }
}

/// What a [`SwitchRecord`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchKind {
    /// A one-epoch audition install during a probe round.
    Probe,
    /// The end-of-round decision committing the winning candidate.
    Commit,
}

impl SwitchKind {
    /// snake_case display name.
    pub fn name(self) -> &'static str {
        match self {
            SwitchKind::Probe => "probe",
            SwitchKind::Commit => "commit",
        }
    }
}

impl std::fmt::Display for SwitchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One controller decision, in epoch order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchRecord {
    /// The epoch (since replay start) that closed when the decision was
    /// taken.
    pub epoch: u64,
    /// Probe install or committed decision.
    pub kind: SwitchKind,
    /// Candidate label active before the decision.
    pub from: String,
    /// Candidate label installed by the decision.
    pub to: String,
    /// The miss rate that drove the decision: the detection epoch's rate
    /// for the first probe, the previous audition's rate for later
    /// probes, the winner's audition rate for the commit.
    pub miss_rate: f64,
    /// The detector's EWMA baseline when the episode began.
    pub baseline: f64,
    /// Simulated clock of the access that closed the epoch, µs.
    pub time_us: u64,
}

/// The serializable account of an [`AdaptiveModel`] run: what the
/// controller saw, what it auditioned, and what it committed.
///
/// Reports merge associatively (counters add, records concatenate in
/// merge order), the same input-index-order contract every other report
/// type honors, so documents embedding them stay byte-identical for any
/// `--jobs` value.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SwitchReport {
    /// Controller epoch width, in accesses. 0 after merging reports
    /// with differing widths.
    pub epoch_accesses: u64,
    /// Completed epochs.
    pub epochs: u64,
    /// Drift detections that opened a probe round.
    pub drifts: u64,
    /// One-epoch audition installs.
    pub probes: u64,
    /// Commits that changed the active configuration relative to before
    /// the probe round.
    pub switches: u64,
    /// Promotions forced by the temperature signal alone.
    pub hot_promotions: u64,
    /// Every probe and commit, in epoch order.
    pub records: Vec<SwitchRecord>,
}

impl SwitchReport {
    /// Folds `other` after `self`. Merging in input-index order is
    /// deterministic for any job count.
    pub fn merge(&mut self, other: &SwitchReport) {
        if self.epochs == 0 {
            self.epoch_accesses = other.epoch_accesses;
        } else if other.epochs != 0 && self.epoch_accesses != other.epoch_accesses {
            self.epoch_accesses = 0;
        }
        self.epochs += other.epochs;
        self.drifts += other.drifts;
        self.probes += other.probes;
        self.switches += other.switches;
        self.hot_promotions += other.hot_promotions;
        self.records.extend(other.records.iter().cloned());
    }
}

#[derive(Debug)]
struct ProbeState {
    /// Candidate currently auditioning.
    current: usize,
    /// Audition miss rates, by candidate index.
    results: [f64; MAX_CANDIDATES],
    /// Active candidate before the round opened.
    pre_active: usize,
    /// Detector baseline when the round opened (for the records).
    detect_base: f64,
}

/// A [`CacheModel`] that hot-swaps among a [`CandidateSet`] of §6 grid
/// configurations at epoch boundaries, driven by the windowed drift
/// detector run online. See the module docs for the control loop.
#[derive(Debug)]
pub struct AdaptiveModel<O: Observer = NullObserver> {
    inner: GenerationalModel<O>,
    candidates: CandidateSet,
    total_bytes: u64,
    epoch_accesses: u64,
    active: usize,
    // Current-epoch accumulators.
    epoch: u64,
    in_epoch: u64,
    epoch_misses: u64,
    epoch_remisses: u64,
    /// Traces that have been resident at least once: a later miss on one
    /// of them is a re-miss (it must have left the hierarchy) — the same
    /// churn definition the window fold uses.
    ever_resident: HashSet<TraceId>,
    // Detector state, mirroring `gencache_obs::detect_drift` epoch by
    // epoch with the same public constants.
    baseline: Option<f64>,
    up: f64,
    down: f64,
    churn_base: f64,
    probing: Option<ProbeState>,
    drifts: u64,
    probes: u64,
    switches: u64,
    records: Vec<SwitchRecord>,
}

impl AdaptiveModel {
    /// An uninstrumented adaptive model over `total_bytes`, starting on
    /// candidate 0.
    pub fn new(candidates: CandidateSet, total_bytes: u64) -> Self {
        AdaptiveModel::observed(candidates, total_bytes, NullObserver)
    }
}

impl<O: Observer> AdaptiveModel<O> {
    /// An adaptive model reporting every cache event — including
    /// [`CacheEvent::PolicySwap`] markers — to `observer`.
    pub fn observed(candidates: CandidateSet, total_bytes: u64, observer: O) -> Self {
        let config = candidates.get(0).config(total_bytes);
        AdaptiveModel {
            inner: GenerationalModel::observed(config, observer),
            candidates,
            total_bytes,
            epoch_accesses: DEFAULT_EPOCH_ACCESSES,
            active: 0,
            epoch: 0,
            in_epoch: 0,
            epoch_misses: 0,
            epoch_remisses: 0,
            ever_resident: HashSet::new(),
            baseline: None,
            up: 0.0,
            down: 0.0,
            churn_base: 0.0,
            probing: None,
            drifts: 0,
            probes: 0,
            switches: 0,
            records: Vec::new(),
        }
    }

    /// Overrides the controller epoch width (minimum 1 access).
    pub fn with_epoch(mut self, epoch_accesses: u64) -> Self {
        self.epoch_accesses = epoch_accesses.max(1);
        self
    }

    /// The candidate set.
    pub fn candidates(&self) -> CandidateSet {
        self.candidates
    }

    /// Index of the active candidate.
    pub fn active(&self) -> usize {
        self.active
    }

    /// The wrapped generational model.
    pub fn inner(&self) -> &GenerationalModel<O> {
        &self.inner
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        self.inner.observer()
    }

    /// The attached observer, mutably.
    pub fn observer_mut(&mut self) -> &mut O {
        self.inner.observer_mut()
    }

    /// Consumes the model, returning the observer.
    pub fn into_observer(self) -> O {
        self.inner.into_observer()
    }

    /// The controller's account of the run so far.
    pub fn switch_report(&self) -> SwitchReport {
        SwitchReport {
            epoch_accesses: self.epoch_accesses,
            epochs: self.epoch,
            drifts: self.drifts,
            probes: self.probes,
            switches: self.switches,
            hot_promotions: self.inner.temperature().map_or(0, |t| t.hot_promotions()),
            records: self.records.clone(),
        }
    }

    /// Installs candidate `to` for a one-epoch audition: flush + rebuild
    /// (cold-start fairness — every audition begins empty) plus the
    /// `PolicySwap` marker.
    fn install_probe(&mut self, to: usize, miss_rate: f64, baseline: f64, now: Time) {
        self.probes += 1;
        self.emit_swap(to, now);
        self.records.push(SwitchRecord {
            epoch: self.epoch,
            kind: SwitchKind::Probe,
            from: self.candidates.get(self.active).label(),
            to: self.candidates.get(to).label(),
            miss_rate,
            baseline,
            time_us: now.as_micros(),
        });
        self.inner
            .reconfigure(self.candidates.get(to).config(self.total_bytes), now);
        self.active = to;
    }

    fn emit_swap(&mut self, to: usize, now: Time) {
        if self.inner.observer().enabled() {
            let event = CacheEvent::PolicySwap {
                epoch: self.epoch,
                from: self.active as u8,
                to: to as u8,
                time: now,
            };
            self.inner.observer_mut().on_event(&event);
        }
    }

    /// Ends the probe round: commit the audition winner (ties to the
    /// lowest index). The winner keeps its warmed cache — only a
    /// *different* candidate needs a fresh install.
    fn commit(&mut self, probe: ProbeState, now: Time) {
        let n = self.candidates.len();
        let mut winner = 0;
        for i in 1..n {
            if probe.results[i] < probe.results[winner] {
                winner = i;
            }
        }
        self.records.push(SwitchRecord {
            epoch: self.epoch,
            kind: SwitchKind::Commit,
            from: self.candidates.get(self.active).label(),
            to: self.candidates.get(winner).label(),
            miss_rate: probe.results[winner],
            baseline: probe.detect_base,
            time_us: now.as_micros(),
        });
        if winner != self.active {
            self.emit_swap(winner, now);
            self.inner
                .reconfigure(self.candidates.get(winner).config(self.total_bytes), now);
            self.active = winner;
        }
        if winner != probe.pre_active {
            self.switches += 1;
        }
        // Fresh detector: the committed configuration sets a new
        // baseline from its own behavior.
        self.baseline = None;
        self.up = 0.0;
        self.down = 0.0;
        self.churn_base = 0.0;
    }

    /// Processes one closed epoch: advance a probe round, or run the
    /// drift detector and maybe open one.
    fn close_epoch(&mut self, now: Time) {
        let accesses = self.in_epoch;
        let misses = self.epoch_misses;
        let remisses = self.epoch_remisses as f64;
        self.in_epoch = 0;
        self.epoch_misses = 0;
        self.epoch_remisses = 0;
        let rate = misses as f64 / accesses as f64;
        self.epoch += 1;
        if self.candidates.len() < 2 {
            return;
        }

        if let Some(mut probe) = self.probing.take() {
            probe.results[probe.current] = rate;
            if probe.current + 1 < self.candidates.len() {
                probe.current += 1;
                let (to, base) = (probe.current, probe.detect_base);
                self.install_probe(to, rate, base, now);
                self.probing = Some(probe);
            } else {
                self.commit(probe, now);
            }
            return;
        }

        // Detector: identical fold to `detect_drift`, one epoch = one
        // window.
        let Some(base) = self.baseline else {
            self.baseline = Some(rate);
            self.churn_base = remisses;
            return;
        };
        self.up = (self.up + (rate - base - PH_DELTA)).max(0.0);
        self.down = (self.down + (base - rate - PH_DELTA)).max(0.0);
        let burst = remisses >= CHURN_MIN_REMISSES as f64
            && remisses >= CHURN_BURST_FACTOR * self.churn_base.max(1.0);
        let rose = self.up > PH_LAMBDA;
        let fell = self.down > PH_LAMBDA;
        if rose || burst {
            // Upward drift or a churn burst: open a probe round. The
            // first detection also arms the temperature signal.
            self.drifts += 1;
            if self.inner.temperature().is_none() {
                self.inner
                    .set_temperature(Some(TemperatureTracker::new(self.epoch_accesses)));
            }
            self.up = 0.0;
            self.down = 0.0;
            self.churn_base = remisses;
            let probe = ProbeState {
                current: 0,
                results: [f64::INFINITY; MAX_CANDIDATES],
                pre_active: self.active,
                detect_base: base,
            };
            self.install_probe(0, rate, base, now);
            self.probing = Some(probe);
            return;
        }
        if fell {
            // Recovery: things got better on their own — re-anchor, as
            // the post-hoc annotator does, but do not churn the cache.
            self.baseline = Some(rate);
            self.up = 0.0;
            self.down = 0.0;
            self.churn_base = remisses;
            return;
        }
        self.baseline = Some(base + EWMA_ALPHA * (rate - base));
        self.churn_base += EWMA_ALPHA * (remisses - self.churn_base);
    }
}

impl<O: Observer> CacheModel for AdaptiveModel<O> {
    fn name(&self) -> String {
        format!("adaptive({})", self.candidates.body())
    }

    fn on_access(&mut self, rec: TraceRecord, now: Time) -> AccessOutcome {
        let outcome = self.inner.on_access(rec, now);
        if matches!(outcome, AccessOutcome::Miss) {
            self.epoch_misses += 1;
            if self.ever_resident.contains(&rec.id) {
                self.epoch_remisses += 1;
            } else if self.inner.generation_of(rec.id).is_some() {
                self.ever_resident.insert(rec.id);
            }
        }
        self.in_epoch += 1;
        if self.in_epoch >= self.epoch_accesses {
            self.close_epoch(now);
        }
        outcome
    }

    fn on_unmap(&mut self, id: TraceId, now: Time) -> bool {
        self.inner.on_unmap(id, now)
    }

    fn on_pin(&mut self, id: TraceId, pinned: bool, now: Time) -> bool {
        self.inner.on_pin(id, pinned, now)
    }

    fn metrics(&self) -> &ModelMetrics {
        self.inner.metrics()
    }

    fn ledger(&self) -> &CostLedger {
        self.inner.ledger()
    }

    fn resident_bytes(&self) -> u64 {
        self.inner.resident_bytes()
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.capacity_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_program::Addr;

    fn rec(id: u64, size: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(id), size, Addr::new(0x1_0000 + id * 0x100))
    }

    #[test]
    fn candidate_labels_match_spec_grammar() {
        let c = Candidate::new(Proportions::best_overall(), PromotionPolicy::OnHit { hits: 1 });
        assert_eq!(c.label(), "45-10-45@hit1");
        let c = Candidate::new(
            Proportions::probation_heavy(),
            PromotionPolicy::OnEviction { threshold: 5 },
        );
        assert_eq!(c.label(), "25-50-25@evict5");
    }

    #[test]
    fn candidate_set_bounds_and_labels() {
        let one = Candidate::new(Proportions::even_thirds(), PromotionPolicy::OnHit { hits: 1 });
        assert!(CandidateSet::new(&[]).is_err());
        assert!(CandidateSet::new(&vec![one; MAX_CANDIDATES + 1]).is_err());
        let set = CandidateSet::new(&[one]).unwrap();
        assert_eq!(set.label(), "adaptive:33-33-33@hit1");
        assert_eq!(CandidateSet::default_set().label(), "adaptive");
        // Equal candidate lists compare equal regardless of construction.
        assert_eq!(
            CandidateSet::new(CandidateSet::default_set().as_slice()).unwrap(),
            CandidateSet::default_set()
        );
    }

    #[test]
    fn stationary_stream_never_switches_and_matches_static() {
        let total = 3000u64;
        let set = CandidateSet::default_set();
        let mut adaptive = AdaptiveModel::new(set, total).with_epoch(64);
        let mut fixed = GenerationalModel::new(set.get(0).config(total));
        // A stable loop over a small working set: hits forever.
        for i in 0..50_000u64 {
            let id = i % 8;
            let t = Time::from_micros(i);
            adaptive.on_access(rec(id, 200), t);
            fixed.on_access(rec(id, 200), t);
        }
        let report = adaptive.switch_report();
        assert_eq!(report.drifts, 0, "stationary stream must not drift");
        assert_eq!(report.probes, 0);
        assert_eq!(report.switches, 0);
        assert!(report.records.is_empty());
        assert_eq!(adaptive.metrics(), fixed.metrics());
        assert_eq!(adaptive.ledger(), fixed.ledger());
    }

    #[test]
    fn phase_shift_triggers_probe_round_and_commit() {
        let total = 4_000u64;
        let set = CandidateSet::default_set();
        let mut m = AdaptiveModel::new(set, total).with_epoch(64);
        let mut clock = 0u64;
        // Phase 1: a calm, hitting working set to seed a low baseline.
        for i in 0..2_000u64 {
            m.on_access(rec(i % 4, 200), Time::from_micros(clock));
            clock += 1;
        }
        // Phase 2: a churning stream far over capacity — the miss rate
        // steps up hard.
        for i in 0..4_000u64 {
            m.on_access(rec(100 + (i % 64), 400), Time::from_micros(clock));
            clock += 1;
        }
        let report = m.switch_report();
        assert!(report.drifts >= 1, "drift must fire: {report:?}");
        assert_eq!(
            report.probes,
            report.drifts * set.len() as u64,
            "every drift auditions every candidate: {report:?}"
        );
        let commits = report
            .records
            .iter()
            .filter(|r| r.kind == SwitchKind::Commit)
            .count() as u64;
        assert_eq!(commits, report.drifts);
        // The controller armed the temperature signal at first drift.
        assert!(m.inner().temperature().is_some());
    }

    #[test]
    fn switch_report_merges_like_other_reports() {
        let mut a = SwitchReport {
            epoch_accesses: 256,
            epochs: 4,
            drifts: 1,
            probes: 4,
            switches: 1,
            hot_promotions: 2,
            records: vec![],
        };
        let b = SwitchReport {
            epoch_accesses: 256,
            epochs: 2,
            ..SwitchReport::default()
        };
        a.merge(&b);
        assert_eq!((a.epochs, a.epoch_accesses), (6, 256));
        let mixed = SwitchReport {
            epoch_accesses: 128,
            epochs: 1,
            ..SwitchReport::default()
        };
        a.merge(&mixed);
        assert_eq!(a.epoch_accesses, 0, "width conflict zeroes the field");
    }

    #[test]
    fn temperature_tracker_learns_hot_traces() {
        let mut t = TemperatureTracker::new(8);
        let hot = TraceId::new(1);
        let cold = TraceId::new(2);
        for i in 0..32 {
            t.observe(hot);
            if i % 16 == 0 {
                t.observe(cold);
            }
        }
        assert!(t.is_hot(hot), "short gaps must read hot");
        assert!(!t.is_hot(cold), "long gaps must stay cold");
    }
}
