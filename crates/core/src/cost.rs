//! The instruction-overhead cost model of Table 2.
//!
//! The paper measured DynamoRIO's key management events with Pentium-4
//! performance counters (via PAPI) and fit formulas against trace size.
//! Its evaluation — and therefore ours — charges these fitted costs per
//! event; Figure 11's overhead ratio is the quotient of two such ledgers
//! (Equation 3).

use serde::{Deserialize, Serialize};

/// Instruction cost of generating a trace of `size_bytes`:
/// `865 * size^0.8`.
///
/// For the median 242-byte trace this is ≈ 69,834 instructions.
pub fn trace_generation(size_bytes: u32) -> f64 {
    865.0 * f64::from(size_bytes).powf(0.8)
}

/// Instruction cost of one DynamoRIO context switch: 25.
pub fn context_switch() -> f64 {
    25.0
}

/// Instruction cost of evicting (deleting) a trace of `size_bytes`:
/// `2.75 * size + 2650`.
pub fn eviction(size_bytes: u32) -> f64 {
    2.75 * f64::from(size_bytes) + 2650.0
}

/// Instruction cost of promoting (relocating) a trace of `size_bytes`
/// between caches: `22 * size + 8030`. Also the cost of the initial copy
/// from the basic-block cache into the trace cache.
pub fn promotion(size_bytes: u32) -> f64 {
    22.0 * f64::from(size_bytes) + 8030.0
}

/// Full cost of servicing one trace-cache conflict miss: two context
/// switches, one trace regeneration, and one copy into the trace cache
/// (same cost as a promotion). ≈ 85,000 instructions for an average
/// trace.
pub fn miss_service(size_bytes: u32) -> f64 {
    2.0 * context_switch() + trace_generation(size_bytes) + promotion(size_bytes)
}

/// An accumulator of management-instruction overhead, split by event kind.
///
/// # Examples
///
/// ```
/// use gencache_core::CostLedger;
///
/// let mut ledger = CostLedger::new();
/// ledger.charge_miss(242);      // regenerate + 2 context switches + copy
/// ledger.charge_eviction(242);  // delete one resident trace
/// assert_eq!(ledger.miss_events, 1);
/// assert!(ledger.total() > 80_000.0); // a miss costs ~85k instructions
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostLedger {
    /// Instructions spent regenerating traces after misses.
    pub trace_generation: f64,
    /// Instructions spent in context switches.
    pub context_switches: f64,
    /// Instructions spent evicting/deleting traces.
    pub evictions: f64,
    /// Instructions spent promoting traces between caches (and copying
    /// new traces into the trace cache).
    pub promotions: f64,
    /// Number of miss-service events charged.
    pub miss_events: u64,
    /// Number of eviction events charged.
    pub eviction_events: u64,
    /// Number of promotion events charged.
    pub promotion_events: u64,
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Charges the full service cost of a conflict miss on a trace of
    /// `size_bytes`.
    pub fn charge_miss(&mut self, size_bytes: u32) {
        self.trace_generation += trace_generation(size_bytes);
        self.context_switches += 2.0 * context_switch();
        self.promotions += promotion(size_bytes); // bb→trace cache copy
        self.miss_events += 1;
    }

    /// Charges one eviction/deletion of a trace of `size_bytes`.
    pub fn charge_eviction(&mut self, size_bytes: u32) {
        self.evictions += eviction(size_bytes);
        self.eviction_events += 1;
    }

    /// Charges one inter-cache promotion of a trace of `size_bytes`.
    pub fn charge_promotion(&mut self, size_bytes: u32) {
        self.promotions += promotion(size_bytes);
        self.promotion_events += 1;
    }

    /// Total management instructions accumulated.
    pub fn total(&self) -> f64 {
        self.trace_generation + self.context_switches + self.evictions + self.promotions
    }
}

/// Equation 3: `generational / unified` total-overhead ratio. Below 1.0
/// means the generational scheme spends fewer instructions on cache
/// management. Returns 1.0 when the unified overhead is zero (no
/// management happened at all under either scheme).
pub fn overhead_ratio(generational: &CostLedger, unified: &CostLedger) -> f64 {
    let u = unified.total();
    if u == 0.0 {
        1.0
    } else {
        generational.total() / u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example: a 242-byte (median) trace costs 69,834
    /// instructions to generate, 3,316 to evict, and 13,354 to promote.
    #[test]
    fn table2_median_trace_values() {
        assert!((trace_generation(242) - 69_834.0).abs() < 100.0);
        assert!((eviction(242) - 3_315.5).abs() < 1.0);
        assert!((promotion(242) - 13_354.0).abs() < 1.0);
        assert_eq!(context_switch(), 25.0);
    }

    /// "For an average trace, this amounts to approximately 85,000
    /// instructions."
    #[test]
    fn miss_service_near_85k() {
        let cost = miss_service(242);
        assert!(
            (80_000.0..90_000.0).contains(&cost),
            "miss service cost {cost} out of range"
        );
    }

    #[test]
    fn ledger_accumulates() {
        let mut ledger = CostLedger::new();
        ledger.charge_miss(242);
        ledger.charge_eviction(242);
        ledger.charge_promotion(242);
        assert_eq!(ledger.miss_events, 1);
        assert_eq!(ledger.eviction_events, 1);
        assert_eq!(ledger.promotion_events, 1);
        let expected = miss_service(242) + eviction(242) + promotion(242);
        assert!((ledger.total() - expected).abs() < 1e-9);
    }

    #[test]
    fn ratio_of_empty_ledgers_is_one() {
        let a = CostLedger::new();
        let b = CostLedger::new();
        assert_eq!(overhead_ratio(&a, &b), 1.0);
    }

    #[test]
    fn ratio_below_one_when_generational_cheaper() {
        let mut unified = CostLedger::new();
        unified.charge_miss(242);
        unified.charge_miss(242);
        let mut generational = CostLedger::new();
        generational.charge_miss(242);
        generational.charge_promotion(242);
        assert!(overhead_ratio(&generational, &unified) < 1.0);
    }

    #[test]
    fn costs_scale_with_size() {
        assert!(trace_generation(1000) > trace_generation(100));
        assert!(eviction(1000) > eviction(100));
        assert!(promotion(1000) > promotion(100));
        // Generation dominates eviction and promotion at every size.
        for s in [32u32, 242, 1024, 4096] {
            assert!(trace_generation(s) > promotion(s));
            assert!(promotion(s) > eviction(s));
        }
    }
}
