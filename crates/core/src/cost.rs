//! The instruction-overhead cost model of Table 2 — re-exported.
//!
//! The formulas and [`CostLedger`] moved to
//! [`gencache_obs::cost`](gencache_obs::cost) so the observer layer can
//! price the event stream ([`gencache_obs::CostObserver`]) without a
//! dependency cycle (`gencache-core` depends on `gencache-obs`, not the
//! other way round). This shim keeps every existing
//! `gencache_core::cost::…` and `gencache_core::{CostLedger,
//! overhead_ratio}` path compiling unchanged.
//!
//! # Examples
//!
//! ```
//! use gencache_core::CostLedger;
//!
//! let mut ledger = CostLedger::new();
//! ledger.charge_miss(242);      // regenerate + 2 context switches + copy
//! assert_eq!(ledger.miss_events, 1);
//! assert!(ledger.total() > 80_000.0); // a miss costs ~85k instructions
//! ```

pub use gencache_obs::cost::{
    context_switch, eviction, miss_service, overhead_ratio, promotion, trace_generation,
    CostLedger,
};
