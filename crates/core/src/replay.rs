//! Replaying a recovered frontend trace into any [`CacheModel`].
//!
//! The offline simulator recovers a [`SimTrace`] from an exported event
//! stream ([`gencache_obs::reconstruct_trace`]) and needs to drive it
//! into a model exactly the way the live replay harness drives its
//! recorded access log. This is that entry point, kept in `core` next
//! to the models so any consumer of the model trait — not just the
//! `gencache-sim` harness — can replay a recovered trace.
//!
//! Semantics mirror the harness: trace bodies get deterministic
//! synthesized head addresses (code addresses never influence cache
//! management and are not recoverable from a stream), and pin toggles —
//! which carry no timestamp of their own — are clocked with the time of
//! the most recent timed op.

use std::collections::HashMap;

use gencache_cache::{TraceId, TraceRecord};
use gencache_obs::{SimTrace, TraceOp};
use gencache_program::{Addr, Time};

use crate::model::CacheModel;

/// Replays every op of `trace` into `model`, in order.
///
/// Returns the number of executions driven (creates + accesses) so
/// callers can sanity-check against
/// [`SimTrace::access_count`].
pub fn replay_trace(trace: &SimTrace, model: &mut dyn CacheModel) -> u64 {
    let mut catalog: HashMap<TraceId, TraceRecord> = HashMap::new();
    let mut executions = 0u64;
    let mut now = Time::ZERO;
    for op in &trace.ops {
        match *op {
            TraceOp::Create { id, bytes, time } => {
                now = time;
                let rec = TraceRecord::new(id, bytes, Addr::new(id.as_u64()));
                catalog.insert(id, rec);
                model.on_access(rec, time);
                executions += 1;
            }
            TraceOp::Access { id, time } => {
                now = time;
                let rec = *catalog.get(&id).expect("access precedes create");
                model.on_access(rec, time);
                executions += 1;
            }
            TraceOp::Invalidate { id, time } => {
                now = time;
                model.on_unmap(id, time);
            }
            TraceOp::Pin { id } => {
                model.on_pin(id, true, now);
            }
            TraceOp::Unpin { id } => {
                model.on_pin(id, false, now);
            }
        }
    }
    executions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unified::UnifiedModel;

    #[test]
    fn drives_creates_accesses_and_unmaps() {
        let trace = SimTrace {
            ops: vec![
                TraceOp::Create {
                    id: TraceId::new(1),
                    bytes: 100,
                    time: Time::ZERO,
                },
                TraceOp::Access {
                    id: TraceId::new(1),
                    time: Time::from_micros(2),
                },
                TraceOp::Pin {
                    id: TraceId::new(1),
                },
                TraceOp::Unpin {
                    id: TraceId::new(1),
                },
                TraceOp::Invalidate {
                    id: TraceId::new(1),
                    time: Time::from_micros(5),
                },
                TraceOp::Create {
                    id: TraceId::new(1),
                    bytes: 100,
                    time: Time::from_micros(6),
                },
            ],
        };
        let mut model = UnifiedModel::new(1_000);
        let driven = replay_trace(&trace, &mut model);
        assert_eq!(driven, 3);
        assert_eq!(model.metrics().accesses, 3);
        assert_eq!(model.metrics().hits, 1);
        assert_eq!(model.metrics().unmap_deletions, 1);
    }
}
