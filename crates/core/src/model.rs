//! The [`CacheModel`] trait: the interface the trace-driven evaluation
//! harness uses to compare unified and generational cache organizations.

use std::fmt;

use gencache_cache::{TraceId, TraceRecord};
use gencache_program::Time;
use serde::{Deserialize, Serialize};

use crate::cost::CostLedger;

/// Which cache in the hierarchy satisfied an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Generation {
    /// The single cache of a unified organization.
    Unified,
    /// The nursery cache (new traces).
    Nursery,
    /// The probation cache (nursery evictees awaiting judgment).
    Probation,
    /// The persistent cache (long-lived traces).
    Persistent,
}

impl fmt::Display for Generation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Generation::Unified => "unified",
            Generation::Nursery => "nursery",
            Generation::Probation => "probation",
            Generation::Persistent => "persistent",
        };
        f.write_str(s)
    }
}

/// The result of presenting one trace execution to a cache model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// The trace was resident; execution stayed in the code cache.
    Hit(Generation),
    /// The trace was absent and had to be regenerated — a conflict miss
    /// costing two context switches, a trace regeneration, and a copy.
    Miss,
}

impl AccessOutcome {
    /// Returns `true` for a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit(_))
    }
}

/// Hit/miss and promotion counters for one model run.
///
/// # Examples
///
/// ```
/// use gencache_cache::{TraceId, TraceRecord};
/// use gencache_core::{CacheModel, UnifiedModel};
/// use gencache_program::{Addr, Time};
///
/// let mut model = UnifiedModel::new(1024);
/// let rec = TraceRecord::new(TraceId::new(1), 200, Addr::new(1));
/// model.on_access(rec, Time::ZERO);                 // cold miss
/// model.on_access(rec, Time::from_micros(1));       // hit
/// assert_eq!(model.metrics().miss_rate(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelMetrics {
    /// Trace executions presented to the model.
    pub accesses: u64,
    /// Accesses that found their trace resident.
    pub hits: u64,
    /// Accesses that required regeneration.
    pub misses: u64,
    /// Traces deleted because their source memory was unmapped.
    pub unmap_deletions: u64,
    /// Nursery→probation promotions.
    pub promotions_to_probation: u64,
    /// Probation→persistent promotions.
    pub promotions_to_persistent: u64,
    /// Probation evictees deleted for failing the promotion test.
    pub probation_discards: u64,
    /// Traces too large to cache at all (executed unlinked every time).
    pub uncachable: u64,
}

impl ModelMetrics {
    /// Miss rate: `misses / accesses`; zero when no accesses occurred.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A bounded trace-cache organization under evaluation.
///
/// The replay harness feeds each model the identical access log recorded
/// from an unbounded run (the paper's methodology, Section 6) and compares
/// metrics and cost ledgers afterward.
pub trait CacheModel: fmt::Debug {
    /// A short human-readable description (e.g. `"unified"` or
    /// `"45-10-45 promote-on-hit(1)"`).
    fn name(&self) -> String;

    /// Presents one execution of `rec`'s trace. On a miss the model
    /// charges regeneration costs and re-inserts the trace.
    fn on_access(&mut self, rec: TraceRecord, now: Time) -> AccessOutcome;

    /// Deletes a trace because its source memory was unmapped at time
    /// `now`. Returns `true` if the trace was resident somewhere.
    ///
    /// Instrumented models emit an event on *every* call — an
    /// [`Evict`](gencache_obs::CacheEvent::Evict) when the trace was
    /// resident, a [`Noop`](gencache_obs::CacheEvent::Noop) otherwise —
    /// so the exported stream records the complete frontend op sequence.
    fn on_unmap(&mut self, id: TraceId, now: Time) -> bool;

    /// Pins or unpins a resident trace (undeletable traces, Section 4.2)
    /// at time `now`. Returns `true` if the trace was resident somewhere.
    ///
    /// Like [`CacheModel::on_unmap`], instrumented models emit a
    /// [`Noop`](gencache_obs::CacheEvent::Noop) when the trace is not
    /// resident, keeping the frontend op stream complete.
    fn on_pin(&mut self, id: TraceId, pinned: bool, now: Time) -> bool;

    /// Hit/miss counters.
    fn metrics(&self) -> &ModelMetrics;

    /// Management-instruction costs accumulated so far.
    fn ledger(&self) -> &CostLedger;

    /// Bytes currently resident across all constituent caches.
    fn resident_bytes(&self) -> u64;

    /// Total capacity across all constituent caches.
    fn capacity_bytes(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_computation() {
        let m = ModelMetrics {
            accesses: 100,
            hits: 80,
            misses: 20,
            ..ModelMetrics::default()
        };
        assert!((m.miss_rate() - 0.2).abs() < 1e-12);
        assert_eq!(ModelMetrics::default().miss_rate(), 0.0);
    }

    #[test]
    fn outcome_helpers() {
        assert!(AccessOutcome::Hit(Generation::Nursery).is_hit());
        assert!(!AccessOutcome::Miss.is_hit());
        assert_eq!(Generation::Probation.to_string(), "probation");
    }
}
