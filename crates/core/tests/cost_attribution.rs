//! The priced event stream *is* the cost model. Every model charges its
//! own [`CostLedger`] immediately before emitting the event that
//! describes the charged action (`Miss`, `Evict`, `Promote`), so a
//! [`CostObserver`] attached to any model must land **bitwise** on the
//! ledger the model kept itself — same formulas, same charge order,
//! identical floating-point results. A divergence means a charge site
//! and its event emission have drifted apart.

use gencache_cache::{
    ClockCache, CodeCache, FlushCache, LruCache, PhaseDetector, PreemptiveFlushCache,
    PseudoCircularCache, TraceId, TraceRecord, UnboundedCache,
};
use gencache_core::{
    CacheModel, GenerationalConfig, GenerationalModel, PromotionPolicy, Proportions, UnifiedModel,
};
use gencache_obs::{CostObserver, CostReport, Region};
use gencache_program::{Addr, Time};
use proptest::prelude::*;
use proptest::{Just, TestCaseError};

const CAPACITY: u64 = 2048;

/// Span of the driver clock: ops are stamped at 7 µs apart, so phase
/// attribution sees a non-degenerate run duration.
const DURATION_US: u64 = 400 * 7;

#[derive(Debug, Clone, Copy)]
enum Op {
    Access { id: u64, bytes: u32 },
    Unmap { id: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0u64..24, 64u32..400).prop_map(|(id, bytes)| Op::Access { id, bytes }),
        1 => (0u64..24).prop_map(|id| Op::Unmap { id }),
    ]
}

fn drive(model: &mut dyn CacheModel, ops: &[Op]) {
    let mut sizes = std::collections::HashMap::new();
    for (step, op) in ops.iter().enumerate() {
        let now = Time::from_micros(step as u64 * 7);
        match *op {
            Op::Access { id, bytes } => {
                let bytes = *sizes.entry(id).or_insert(bytes);
                model.on_access(TraceRecord::new(TraceId::new(id), bytes, Addr::new(id)), now);
            }
            Op::Unmap { id } => {
                model.on_unmap(TraceId::new(id), now);
            }
        }
    }
}

fn policies() -> Vec<(&'static str, Box<dyn CodeCache>)> {
    vec![
        ("pseudo-circular", Box::new(PseudoCircularCache::new(CAPACITY))),
        ("lru", Box::new(LruCache::new(CAPACITY))),
        ("clock", Box::new(ClockCache::new(CAPACITY))),
        ("flush-on-full", Box::new(FlushCache::new(CAPACITY))),
        (
            "preemptive-flush",
            Box::new(PreemptiveFlushCache::new(
                CAPACITY,
                PhaseDetector {
                    window: 8,
                    spike_factor: 2.0,
                    min_insertions: 16,
                },
            )),
        ),
        ("unbounded", Box::new(UnboundedCache::new())),
    ]
}

fn policy_strategy() -> impl Strategy<Value = PromotionPolicy> {
    prop_oneof![
        Just(PromotionPolicy::OnHit { hits: 1 }),
        Just(PromotionPolicy::OnHit { hits: 2 }),
        Just(PromotionPolicy::OnEviction { threshold: 1 }),
        Just(PromotionPolicy::OnEviction { threshold: 3 }),
    ]
}

/// Event counters are integers, so they must distribute exactly across
/// the phase slices (float sums may differ in rounding order; the
/// counters may not).
fn assert_phase_counters_sum(report: &CostReport) -> Result<(), TestCaseError> {
    let by_phase = |f: fn(&gencache_core::CostLedger) -> u64| -> u64 {
        report.phases.iter().map(|p| f(&p.ledger)).sum()
    };
    prop_assert_eq!(by_phase(|l| l.miss_events), report.total.miss_events);
    prop_assert_eq!(by_phase(|l| l.eviction_events), report.total.eviction_events);
    prop_assert_eq!(by_phase(|l| l.promotion_events), report.total.promotion_events);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every local replacement policy wrapped in the unified model,
    /// the observer-side ledger equals the model's own — bitwise.
    #[test]
    fn unified_cost_observer_matches_model_ledger(
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        for (name, cache) in policies() {
            let observer = CostObserver::with_phases(4, DURATION_US);
            let mut model = UnifiedModel::with_cache_observed(name, cache, observer);
            drive(&mut model, &ops);
            let ledger = *model.ledger();
            let report = model.into_observer().into_report();
            prop_assert_eq!(report.total, ledger, "policy {} diverged", name);
            assert_phase_counters_sum(&report)?;
        }
    }

    /// The generational hierarchy charges misses, inter-region
    /// promotions and cause-tagged deletions; the observer must
    /// reprice all of them identically for every promotion policy and
    /// budget split.
    #[test]
    fn generational_cost_observer_matches_model_ledger(
        ops in proptest::collection::vec(op_strategy(), 1..400),
        policy in policy_strategy(),
        proportions in prop_oneof![
            Just(Proportions::even_thirds()),
            Just(Proportions::best_overall()),
            Just(Proportions::probation_heavy()),
        ],
    ) {
        let config = GenerationalConfig::new(CAPACITY, proportions, policy);
        let observer = CostObserver::with_phases(6, DURATION_US);
        let mut model = GenerationalModel::observed(config, observer);
        drive(&mut model, &ops);
        let ledger = *model.ledger();
        let report = model.into_observer().into_report();
        prop_assert_eq!(report.total, ledger, "{:?} diverged", policy);
        assert_phase_counters_sum(&report)?;

        // Region attribution accounts for every priced eviction: the
        // per-region eviction counters partition the total.
        let region_evictions: u64 = Region::ALL
            .iter()
            .map(|r| report.region(*r).ledger.eviction_events)
            .sum();
        prop_assert_eq!(region_evictions, ledger.eviction_events);
    }
}
