//! The event stream is a *complete* account of cache behaviour: replaying
//! it through `reconstruct_stats` must land on exactly the counters the
//! cache itself kept, for every local replacement policy and any
//! operation stream. A divergence means an emission site is missing,
//! duplicated, or tagged with the wrong cause.

use gencache_cache::{
    ClockCache, CodeCache, FlushCache, LruCache, PhaseDetector, PreemptiveFlushCache,
    PseudoCircularCache, TraceId, TraceRecord, UnboundedCache,
};
use gencache_core::{
    CacheModel, GenerationalConfig, GenerationalModel, PromotionPolicy, Proportions, UnifiedModel,
};
use gencache_cache::CacheStats;
use gencache_obs::{reconstruct_stats, EventBuffer, MetricsObserver, Region};
use gencache_program::{Addr, Time};
use proptest::prelude::*;
use proptest::Just;

const CAPACITY: u64 = 2048;

/// One step of a random driver stream. Pins are excluded on purpose:
/// with pinned entries a pseudo-circular insert may fail *after* evicting
/// entries, and the paper's replay harness treats that as fatal.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Present trace `id` (size `bytes`) for execution: hit or insert.
    Access { id: u64, bytes: u32 },
    /// Unmap trace `id` if resident.
    Unmap { id: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Sizes stay well under CAPACITY so insertion never fails and every
    // policy keeps a few traces resident at once.
    prop_oneof![
        8 => (0u64..24, 64u32..400).prop_map(|(id, bytes)| Op::Access { id, bytes }),
        1 => (0u64..24).prop_map(|id| Op::Unmap { id }),
    ]
}

fn drive(model: &mut dyn CacheModel, ops: &[Op]) {
    let mut sizes = std::collections::HashMap::new();
    for (step, op) in ops.iter().enumerate() {
        let now = Time::from_micros(step as u64 * 7);
        match *op {
            Op::Access { id, bytes } => {
                // A re-created trace keeps its first size, like a real
                // regeneration of the same source region.
                let bytes = *sizes.entry(id).or_insert(bytes);
                model.on_access(TraceRecord::new(TraceId::new(id), bytes, Addr::new(id)), now);
            }
            Op::Unmap { id } => {
                model.on_unmap(TraceId::new(id), now);
            }
        }
    }
}

fn policies() -> Vec<(&'static str, Box<dyn CodeCache>)> {
    vec![
        ("pseudo-circular", Box::new(PseudoCircularCache::new(CAPACITY))),
        ("lru", Box::new(LruCache::new(CAPACITY))),
        ("clock", Box::new(ClockCache::new(CAPACITY))),
        ("flush-on-full", Box::new(FlushCache::new(CAPACITY))),
        (
            "preemptive-flush",
            Box::new(PreemptiveFlushCache::new(
                CAPACITY,
                PhaseDetector {
                    window: 8,
                    spike_factor: 2.0,
                    min_insertions: 16,
                },
            )),
        ),
        ("unbounded", Box::new(UnboundedCache::new())),
    ]
}

/// Promotion policies the generational reconstruction tests sweep.
fn policy_strategy() -> impl Strategy<Value = PromotionPolicy> {
    prop_oneof![
        Just(PromotionPolicy::OnHit { hits: 1 }),
        Just(PromotionPolicy::OnHit { hits: 2 }),
        Just(PromotionPolicy::OnEviction { threshold: 1 }),
        Just(PromotionPolicy::OnEviction { threshold: 3 }),
    ]
}

/// Bytes removed from a cache for any cause.
fn removed_bytes(s: &CacheStats) -> u64 {
    s.capacity_evicted_bytes
        + s.unmap_deleted_bytes
        + s.flush_evicted_bytes
        + s.discarded_bytes
        + s.promoted_out_bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every single-cache policy, the stats reconstructed purely
    /// from the event stream equal the stats the cache kept itself.
    #[test]
    fn events_reconstruct_exact_stats(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        for (name, cache) in policies() {
            let mut model = UnifiedModel::with_cache_observed(name, cache, EventBuffer::new());
            drive(&mut model, &ops);
            let stats = *model.cache().stats();
            let events = model.into_observer().events;
            let reconstructed = reconstruct_stats(&events, Region::Unified);
            prop_assert_eq!(reconstructed, stats, "policy {} diverged", name);
        }
    }

    /// The generational hierarchy's event stream accounts for every
    /// access and every resident byte: aggregate totals agree with the
    /// model's own counters and occupancy.
    #[test]
    fn generational_events_account_for_every_byte(
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        let config = GenerationalConfig::new(
            CAPACITY,
            Proportions::best_overall(),
            PromotionPolicy::OnHit { hits: 1 },
        );
        let mut model = GenerationalModel::observed(config, MetricsObserver::new());
        drive(&mut model, &ops);
        let report = model.observer().report();
        prop_assert_eq!(report.accesses, model.metrics().accesses);
        prop_assert_eq!(report.hits, model.metrics().hits);
        prop_assert_eq!(report.misses, model.metrics().misses);
        let event_resident: u64 = Region::ALL
            .iter()
            .map(|r| report.region(*r).resident_bytes)
            .sum();
        prop_assert_eq!(event_resident, model.resident_bytes());
    }

    /// Per-region reconstruction of the generational hierarchy. With
    /// even thirds of a 2048-byte budget every region (682 B) holds any
    /// generated trace (< 400 B), so no promotion can fail and the
    /// `Promote`/`PromotedIn` pairing covers every inter-region move:
    ///
    /// * The **persistent** region reconstructs *exactly* — full
    ///   [`CacheStats`] equality, causes included. Nothing leaves the
    ///   persistent cache except by eviction or unmap, and every arrival
    ///   is a `PromotedIn`.
    /// * The **nursery** and **probation** caches tag policy evictions
    ///   as `Capacity` locally, while the hierarchy narrates the
    ///   evictee's fate (`Promote` onward, or `Evict`/`Discarded` after
    ///   failing probation). Everything except that cause split — entry
    ///   and byte inflow, hits, peak occupancy, and total outflow — must
    ///   still agree exactly.
    #[test]
    fn generational_regions_reconstruct_from_events(
        ops in proptest::collection::vec(op_strategy(), 1..400),
        policy in policy_strategy(),
    ) {
        let config = GenerationalConfig::new(CAPACITY, Proportions::even_thirds(), policy);
        let mut model = GenerationalModel::observed(config, EventBuffer::new());
        drive(&mut model, &ops);
        let nursery = *model.nursery().stats();
        let probation = *model.probation().stats();
        let persistent = *model.persistent().stats();
        let events = model.into_observer().events;

        let reconstructed = reconstruct_stats(&events, Region::Persistent);
        prop_assert_eq!(reconstructed, persistent, "persistent region diverged ({:?})", policy);

        for (region, stats) in [(Region::Nursery, nursery), (Region::Probation, probation)] {
            let r = reconstruct_stats(&events, region);
            prop_assert_eq!(r.insertions, stats.insertions, "{:?} insertions", region);
            prop_assert_eq!(r.inserted_bytes, stats.inserted_bytes, "{:?} bytes in", region);
            prop_assert_eq!(r.hits, stats.hits, "{:?} hits", region);
            prop_assert_eq!(r.peak_used_bytes, stats.peak_used_bytes, "{:?} peak", region);
            prop_assert_eq!(r.total_removals(), stats.total_removals(), "{:?} removals", region);
            prop_assert_eq!(removed_bytes(&r), removed_bytes(&stats), "{:?} bytes out", region);
            prop_assert_eq!(r.unmap_deletions, stats.unmap_deletions, "{:?} unmaps", region);
        }
    }
}
