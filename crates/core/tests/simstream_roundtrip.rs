//! Round-trip property: the event stream a model emits is a complete,
//! exact record of the frontend requests that drove it.
//!
//! For any op sequence, driving an instrumented model, recovering the
//! frontend trace from its events ([`reconstruct_trace`]) and replaying
//! that trace into a fresh identical model ([`replay_trace`]) must
//! reproduce the original run bitwise: same [`ModelMetrics`], same cost
//! ledger, same per-cache [`CacheStats`]. This is the property the
//! offline what-if simulator stands on — it holds for all six local
//! replacement policies and the generational hierarchy, and it holds
//! even though the recovered trace re-synthesizes head addresses
//! (cache management never looks at them).

use gencache_cache::{
    ClockCache, CodeCache, FlushCache, LruCache, PhaseDetector, PreemptiveFlushCache,
    PseudoCircularCache, TraceId, TraceRecord, UnboundedCache,
};
use gencache_core::{
    replay_trace, CacheModel, GenerationalConfig, GenerationalModel, PromotionPolicy, Proportions,
    UnifiedModel,
};
use gencache_obs::{reconstruct_trace, EventBuffer};
use gencache_program::{Addr, Time};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Access { id: u64, size: u32 },
    Unmap { id: u64 },
    Pin { id: u64, pinned: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0u64..60, 50u32..400).prop_map(|(id, size)| Op::Access { id, size }),
        1 => (0u64..60).prop_map(|id| Op::Unmap { id }),
        1 => (0u64..60, any::<bool>()).prop_map(|(id, pinned)| Op::Pin { id, pinned }),
    ]
}

/// Drives `ops` into a model the way the recorder would: consistent
/// sizes per trace id, one microsecond per step.
fn run_ops(model: &mut dyn CacheModel, ops: &[Op]) {
    use std::collections::HashMap;
    let mut sizes: HashMap<u64, u32> = HashMap::new();
    for (step, op) in ops.iter().enumerate() {
        let now = Time::from_micros(step as u64);
        match *op {
            Op::Access { id, size } => {
                let size = *sizes.entry(id).or_insert(size);
                let rec = TraceRecord::new(TraceId::new(id), size, Addr::new(0x1000 + id));
                model.on_access(rec, now);
            }
            Op::Unmap { id } => {
                model.on_unmap(TraceId::new(id), now);
            }
            Op::Pin { id, pinned } => {
                model.on_pin(TraceId::new(id), pinned, now);
            }
        }
    }
}

/// The six local replacement policies, built fresh at `capacity`.
fn local_cache(which: usize, capacity: u64) -> (&'static str, Box<dyn CodeCache>) {
    match which {
        0 => ("pseudo-circular", Box::new(PseudoCircularCache::new(capacity))),
        1 => ("lru", Box::new(LruCache::new(capacity))),
        2 => ("clock", Box::new(ClockCache::new(capacity))),
        3 => ("flush-on-full", Box::new(FlushCache::new(capacity))),
        4 => (
            "preemptive-flush",
            Box::new(PreemptiveFlushCache::new(capacity, PhaseDetector::default())),
        ),
        _ => ("unbounded", Box::new(UnboundedCache::new())),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every local policy round-trips: recorded events → recovered
    /// trace → fresh replay reproduces metrics, ledger and CacheStats.
    #[test]
    fn local_policies_roundtrip_bitwise(
        ops in proptest::collection::vec(op_strategy(), 1..250),
        capacity in 500u64..5000,
    ) {
        for which in 0..6 {
            let (name, cache) = local_cache(which, capacity);
            let mut original =
                UnifiedModel::with_cache_observed(name, cache, EventBuffer::new());
            run_ops(&mut original, &ops);

            let recorded_metrics = *original.metrics();
            let recorded_ledger = *original.ledger();
            let recorded_stats = *original.cache().stats();
            let events = original.into_observer().events;

            let trace = reconstruct_trace(&events).expect("stream inverts");
            let (name, cache) = local_cache(which, capacity);
            let mut replayed = UnifiedModel::with_cache(name, cache);
            replay_trace(&trace, &mut replayed);

            prop_assert_eq!(replayed.metrics(), &recorded_metrics, "{} metrics", name);
            prop_assert_eq!(replayed.ledger(), &recorded_ledger, "{} ledger", name);
            prop_assert_eq!(replayed.cache().stats(), &recorded_stats, "{} stats", name);
        }
    }

    /// The generational hierarchy round-trips too, region by region.
    #[test]
    fn generational_roundtrip_bitwise(
        ops in proptest::collection::vec(op_strategy(), 1..250),
        capacity in 1000u64..8000,
        hit_policy in any::<bool>(),
    ) {
        let policy = if hit_policy {
            PromotionPolicy::OnHit { hits: 1 }
        } else {
            PromotionPolicy::OnEviction { threshold: 5 }
        };
        let config = GenerationalConfig::new(capacity, Proportions::best_overall(), policy);
        let mut original = GenerationalModel::observed(config, EventBuffer::new());
        run_ops(&mut original, &ops);

        let recorded_metrics = *original.metrics();
        let recorded_ledger = *original.ledger();
        let recorded_stats = [
            *original.nursery().stats(),
            *original.probation().stats(),
            *original.persistent().stats(),
        ];
        let events = original.into_observer().events;

        let trace = reconstruct_trace(&events).expect("stream inverts");
        let mut replayed = GenerationalModel::new(config);
        replay_trace(&trace, &mut replayed);

        prop_assert_eq!(replayed.metrics(), &recorded_metrics);
        prop_assert_eq!(replayed.ledger(), &recorded_ledger);
        prop_assert_eq!(replayed.nursery().stats(), &recorded_stats[0]);
        prop_assert_eq!(replayed.probation().stats(), &recorded_stats[1]);
        prop_assert_eq!(replayed.persistent().stats(), &recorded_stats[2]);
    }
}
