//! Property-based tests of the cache models: structural invariants that
//! must hold for any access/unmap/pin sequence under any configuration.

use gencache_cache::{CodeCache, TraceId, TraceRecord};
use gencache_core::{
    CacheModel, GenerationalConfig, GenerationalModel, PromotionPolicy, Proportions, UnifiedModel,
};
use gencache_program::{Addr, Time};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Access { id: u64, size: u32 },
    Unmap { id: u64 },
    Pin { id: u64, pinned: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0u64..60, 50u32..400).prop_map(|(id, size)| Op::Access { id, size }),
        1 => (0u64..60).prop_map(|id| Op::Unmap { id }),
        1 => (0u64..60, any::<bool>()).prop_map(|(id, pinned)| Op::Pin { id, pinned }),
    ]
}

fn policy_strategy() -> impl Strategy<Value = PromotionPolicy> {
    prop_oneof![
        (1u64..4).prop_map(|hits| PromotionPolicy::OnHit { hits }),
        (0u64..20).prop_map(|threshold| PromotionPolicy::OnEviction { threshold }),
    ]
}

/// Runs ops against a model, tracking per-trace sizes consistently
/// (the same trace id always presents the same size, as in a real log).
fn run_ops(model: &mut dyn CacheModel, ops: &[Op]) {
    use std::collections::HashMap;
    let mut sizes: HashMap<u64, u32> = HashMap::new();
    for (step, op) in ops.iter().enumerate() {
        let now = Time::from_micros(step as u64);
        match *op {
            Op::Access { id, size } => {
                let size = *sizes.entry(id).or_insert(size);
                let rec = TraceRecord::new(TraceId::new(id), size, Addr::new(0x1000 + id));
                let outcome = model.on_access(rec, now);
                let _ = outcome;
            }
            Op::Unmap { id } => {
                model.on_unmap(TraceId::new(id), now);
            }
            Op::Pin { id, pinned } => {
                model.on_pin(TraceId::new(id), pinned, now);
            }
        }
        // Universal invariants after every step.
        assert!(model.resident_bytes() <= model.capacity_bytes());
        let m = model.metrics();
        assert_eq!(m.hits + m.misses, m.accesses);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unified_model_invariants(
        ops in proptest::collection::vec(op_strategy(), 1..300),
        capacity in 500u64..5000,
    ) {
        let mut model = UnifiedModel::new(capacity);
        run_ops(&mut model, &ops);
    }

    #[test]
    fn generational_model_invariants(
        ops in proptest::collection::vec(op_strategy(), 1..300),
        capacity in 1000u64..8000,
        policy in policy_strategy(),
        which in 0usize..4,
    ) {
        let proportions = [
            Proportions::even_thirds(),
            Proportions::best_overall(),
            Proportions::probation_heavy(),
            Proportions::new(0.5, 0.0, 0.5),
        ][which];
        let mut model = GenerationalModel::new(GenerationalConfig::new(
            capacity, proportions, policy,
        ));
        run_ops(&mut model, &ops);
    }

    /// A trace is resident in at most one generation at any time.
    #[test]
    fn trace_lives_in_at_most_one_generation(
        ops in proptest::collection::vec(op_strategy(), 1..300),
        capacity in 1000u64..8000,
        policy in policy_strategy(),
    ) {
        let mut model = GenerationalModel::new(GenerationalConfig::new(
            capacity,
            Proportions::best_overall(),
            policy,
        ));
        use std::collections::HashMap;
        let mut sizes: HashMap<u64, u32> = HashMap::new();
        for (step, op) in ops.iter().enumerate() {
            let now = Time::from_micros(step as u64);
            if let Op::Access { id, size } = *op {
                let size = *sizes.entry(id).or_insert(size);
                let rec = TraceRecord::new(TraceId::new(id), size, Addr::new(id));
                model.on_access(rec, now);
            }
            for id in sizes.keys() {
                let tid = TraceId::new(*id);
                let residencies = [
                    model.nursery().contains(tid),
                    model.probation().contains(tid),
                    model.persistent().contains(tid),
                ]
                .iter()
                .filter(|&&r| r)
                .count();
                prop_assert!(residencies <= 1, "trace {tid} in {residencies} caches");
                // generation_of agrees with the underlying caches.
                prop_assert_eq!(model.generation_of(tid).is_some(), residencies == 1);
            }
        }
    }

    /// A hit means the trace stays (or moves up); it is never silently
    /// dropped by an access.
    #[test]
    fn hits_never_lose_the_trace(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        capacity in 1000u64..8000,
    ) {
        let mut model = GenerationalModel::new(GenerationalConfig::new(
            capacity,
            Proportions::best_overall(),
            PromotionPolicy::OnHit { hits: 1 },
        ));
        use std::collections::HashMap;
        let mut sizes: HashMap<u64, u32> = HashMap::new();
        for (step, op) in ops.iter().enumerate() {
            if let Op::Access { id, size } = *op {
                let size = *sizes.entry(id).or_insert(size);
                let rec = TraceRecord::new(TraceId::new(id), size, Addr::new(id));
                let outcome = model.on_access(rec, Time::from_micros(step as u64));
                if outcome.is_hit() {
                    prop_assert!(
                        model.generation_of(rec.id).is_some(),
                        "hit trace {} vanished",
                        rec.id
                    );
                }
            }
        }
    }

    /// Unified and generational models always agree on total accesses and
    /// each counts misses no smaller than the number of distinct traces.
    #[test]
    fn miss_floor_is_distinct_trace_count(
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        let mut unified = UnifiedModel::new(4096);
        let mut gen = GenerationalModel::new(GenerationalConfig::new(
            4096,
            Proportions::even_thirds(),
            PromotionPolicy::OnEviction { threshold: 5 },
        ));
        use std::collections::HashSet;
        let mut distinct: HashSet<u64> = HashSet::new();
        let mut accesses = 0u64;
        for (step, op) in ops.iter().enumerate() {
            if let Op::Access { id, size } = *op {
                let rec = TraceRecord::new(TraceId::new(id), size.min(400), Addr::new(id));
                let now = Time::from_micros(step as u64);
                unified.on_access(rec, now);
                gen.on_access(rec, now);
                distinct.insert(id);
                accesses += 1;
            }
        }
        prop_assert_eq!(unified.metrics().accesses, accesses);
        prop_assert_eq!(gen.metrics().accesses, accesses);
        prop_assert!(unified.metrics().misses >= distinct.len() as u64);
        prop_assert!(gen.metrics().misses >= distinct.len() as u64);
    }
}
