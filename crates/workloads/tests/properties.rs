//! Property-based tests over randomly generated workload profiles: any
//! valid profile must plan successfully and stream a well-formed,
//! deterministic event sequence.

use gencache_program::Time;
use gencache_workloads::{ExecutionPlan, PlanStep, Suite, WorkloadEvent, WorkloadProfile};
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = WorkloadProfile> {
    (
        16u64..128,      // footprint KB (small for speed)
        1u32..8,         // phases
        0.05f64..0.45,   // persistent fraction
        0.0f64..0.25,    // medium fraction
        0u32..6,         // dll count
        0.0f64..1.0,     // unload fraction
        1u32..6,         // hot revisits
        any::<u64>(),    // seed
        prop::bool::ANY, // suite
    )
        .prop_map(
            |(kb, phases, persistent, medium, dlls, unload, revisits, seed, spec)| {
                let suite = if spec {
                    Suite::Spec2000
                } else {
                    Suite::Interactive
                };
                WorkloadProfile::builder("prop", suite)
                    .footprint_kb(kb)
                    .phases(phases)
                    .lifetime_mix(persistent, medium.min(1.0 - persistent))
                    .dlls(dlls, unload)
                    .hot_revisits(revisits)
                    .seed(seed)
                    .duration_secs(5.0)
                    .build()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_valid_profile_plans(profile in profile_strategy()) {
        let plan = ExecutionPlan::from_profile(&profile).expect("valid profile plans");
        prop_assert!(plan.total_exec_events() > 0);
        prop_assert!(!plan.regions().is_empty());
        prop_assert!(!plan.steps().is_empty());
    }

    #[test]
    fn stream_matches_plan_accounting(profile in profile_strategy()) {
        let plan = ExecutionPlan::from_profile(&profile).expect("plans");
        let mut execs = 0u64;
        let mut unloads = 0usize;
        let mut last = Time::ZERO;
        for ev in plan.stream() {
            prop_assert!(ev.time >= last, "timestamps must be monotone");
            prop_assert!(ev.time <= plan.duration());
            last = ev.time;
            match ev.event {
                WorkloadEvent::Exec { addr } => {
                    execs += 1;
                    prop_assert!(
                        plan.image().block_at(addr).is_some(),
                        "exec of unknown block {addr}"
                    );
                }
                WorkloadEvent::Unload { .. } => unloads += 1,
            }
        }
        prop_assert_eq!(execs, plan.total_exec_events());
        let planned_unloads = plan
            .steps()
            .iter()
            .filter(|s| matches!(s, PlanStep::Unload { .. }))
            .count();
        prop_assert_eq!(unloads, planned_unloads);
    }

    #[test]
    fn planning_is_a_pure_function_of_the_profile(profile in profile_strategy()) {
        let a = ExecutionPlan::from_profile(&profile).expect("plans");
        let b = ExecutionPlan::from_profile(&profile).expect("plans");
        prop_assert_eq!(a.total_exec_events(), b.total_exec_events());
        prop_assert_eq!(a.steps(), b.steps());
        prop_assert_eq!(a.image().total_code_bytes(), b.image().total_code_bytes());
    }

    #[test]
    fn unloaded_modules_never_execute_afterwards(profile in profile_strategy()) {
        let plan = ExecutionPlan::from_profile(&profile).expect("plans");
        let mut unloaded: Vec<gencache_program::ModuleId> = Vec::new();
        for ev in plan.stream() {
            match ev.event {
                WorkloadEvent::Unload { module } => unloaded.push(module),
                WorkloadEvent::Exec { addr } => {
                    if let Some(module) = plan.image().module_containing(addr) {
                        prop_assert!(
                            !unloaded.contains(&module.id()),
                            "executed code in unloaded module {}",
                            module.id()
                        );
                    }
                }
            }
        }
    }
}
