//! Workload profiles: the tunable description of one benchmark.
//!
//! The paper evaluates two suites — SPEC2000 and large interactive Windows
//! applications (Table 1). We cannot rerun DynamoRIO over the originals,
//! so each benchmark becomes a *profile*: a parameterized synthetic
//! program whose code footprint, phase structure, trace-lifetime mix, and
//! DLL churn are calibrated to land near the characterization the paper
//! reports (Figures 1–4 and 6).

use serde::{Deserialize, Serialize};

/// Which benchmark suite a profile belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// The SPEC CPU2000 suite, run to completion on reference inputs.
    Spec2000,
    /// Large interactive Windows applications (Table 1).
    Interactive,
    /// Synthetic stress workloads outside the paper's evaluation:
    /// phase-shifting and churn-adversarial streams built to defeat any
    /// single static configuration.
    Adversarial,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Spec2000 => f.write_str("SPEC2000"),
            Suite::Interactive => f.write_str("Interactive"),
            Suite::Adversarial => f.write_str("Adversarial"),
        }
    }
}

/// An optional mid-run regime alternation: every `period` phases the
/// workload flips between the profile's own lifetime mix and this
/// alternate mix, with its *own* set of long-lived regions and a
/// `flood`-weighted share of the short-lived code.
///
/// The two regimes deliberately reward different cache layouts — a
/// persistent-lean calm regime and a nursery-hungry flood regime — so a
/// run containing both has no single best static configuration. This is
/// the lever behind the [`Suite::Adversarial`] profiles the adaptive
/// policy engine is judged on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegimeShift {
    /// Phases per regime segment; segment index `phase / period` is even
    /// for the base regime, odd for the alternate one.
    pub period: u32,
    /// Alternate-regime fraction of hot-code bytes that is long-lived.
    pub persistent_frac: f64,
    /// Alternate-regime fraction with medium lifetimes.
    pub medium_frac: f64,
    /// Weight of alternate-regime phases when spreading short-lived
    /// code: `2.0` gives flood phases twice the transient code of calm
    /// ones.
    pub flood: f64,
}

/// The synthetic description of one benchmark.
///
/// # Examples
///
/// ```
/// use gencache_workloads::{Suite, WorkloadProfile};
///
/// let profile = WorkloadProfile::builder("toy", Suite::Spec2000)
///     .description("tiny example workload")
///     .duration_secs(5.0)
///     .footprint_kb(64)
///     .phases(4)
///     .build();
/// assert_eq!(profile.name, "toy");
/// assert!(profile.footprint_bytes > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Benchmark name (e.g. `"gcc"` or `"word"`).
    pub name: String,
    /// Which suite the benchmark belongs to.
    pub suite: Suite,
    /// Human-readable description (Table 1's "Description" column).
    pub description: String,
    /// Wall-clock duration of the run in seconds (Table 1's "Seconds").
    pub duration_secs: f64,
    /// Static code bytes the program executes (its application footprint,
    /// the denominator of Equation 1).
    pub footprint_bytes: u64,
    /// Number of program phases. Phase-local code lives for roughly
    /// `1/phases` of the run, so more phases ⇒ shorter short-lived
    /// lifetimes.
    pub phases: u32,
    /// Fraction of hot-code bytes that is *long-lived* — re-executed in
    /// every phase (event dispatch, main loops).
    pub persistent_frac: f64,
    /// Fraction of hot-code bytes with *medium* lifetimes, spanning a few
    /// consecutive phases.
    pub medium_frac: f64,
    /// Number of shared libraries the program maps.
    pub dll_count: u32,
    /// Fraction of DLLs that get unmapped during the run (drives the
    /// Figure 4 unmapped-memory deletions; ≈ 0 for SPEC).
    pub dll_unload_frac: f64,
    /// How many times per phase the long-lived regions are re-executed.
    pub hot_revisits: u32,
    /// Iterations to run a region's loop beyond the trace-creation
    /// threshold on its first activation (controls post-creation trace
    /// accesses).
    pub warmup_extra_iters: u32,
    /// Iterations per re-visit burst of an already-hot region.
    pub revisit_iters: u32,
    /// RNG seed; derived from the name by default so every profile is
    /// deterministic.
    pub seed: u64,
    /// Number of guest threads. Long-lived (persistent) regions are
    /// *shared*: every thread executes them, so per-thread code caches
    /// each build their own copy of the shared hot traces. Phase-local
    /// regions are thread-private. Defaults to 1 (the paper's
    /// single-threaded evaluation).
    pub threads: u32,
    /// Optional regime alternation (see [`RegimeShift`]); `None` — the
    /// default, and every paper benchmark — keeps one stationary regime
    /// for the whole run.
    pub shift: Option<RegimeShift>,
}

impl WorkloadProfile {
    /// Starts building a profile with sensible defaults.
    pub fn builder(name: impl Into<String>, suite: Suite) -> WorkloadProfileBuilder {
        let name = name.into();
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        WorkloadProfileBuilder {
            profile: WorkloadProfile {
                name,
                suite,
                description: String::new(),
                duration_secs: 10.0,
                footprint_bytes: 256 * 1024,
                phases: 8,
                persistent_frac: 0.20,
                medium_frac: 0.10,
                dll_count: if suite == Suite::Interactive { 12 } else { 2 },
                dll_unload_frac: if suite == Suite::Interactive {
                    0.5
                } else {
                    0.0
                },
                hot_revisits: 3,
                warmup_extra_iters: 25,
                revisit_iters: 6,
                seed,
                threads: 1,
                shift: None,
            },
        }
    }

    /// Returns a copy with the footprint divided by `factor` (for fast
    /// tests and smoke runs). Durations and fractions are unchanged, so
    /// rates scale down with size but the figure *shapes* are preserved.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[must_use]
    pub fn scaled_down(&self, factor: u64) -> WorkloadProfile {
        assert!(factor > 0, "scale factor must be nonzero");
        let mut p = self.clone();
        p.footprint_bytes = (p.footprint_bytes / factor).max(8 * 1024);
        p
    }

    /// Validates internal consistency (fractions in range, nonzero sizes).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("profile name must not be empty".into());
        }
        if self.duration_secs <= 0.0 || self.duration_secs.is_nan() {
            return Err(format!(
                "duration must be positive, got {}",
                self.duration_secs
            ));
        }
        if self.footprint_bytes < 4096 {
            return Err(format!(
                "footprint {} too small to lay out a program",
                self.footprint_bytes
            ));
        }
        if self.phases == 0 {
            return Err("phase count must be nonzero".into());
        }
        if self.threads == 0 {
            return Err("thread count must be nonzero".into());
        }
        let frac_sum = self.persistent_frac + self.medium_frac;
        if !(0.0..=1.0).contains(&self.persistent_frac)
            || !(0.0..=1.0).contains(&self.medium_frac)
            || frac_sum > 1.0
        {
            return Err(format!(
                "persistent ({}) + medium ({}) fractions must fit in [0,1]",
                self.persistent_frac, self.medium_frac
            ));
        }
        if !(0.0..=1.0).contains(&self.dll_unload_frac) {
            return Err(format!(
                "dll_unload_frac {} out of [0,1]",
                self.dll_unload_frac
            ));
        }
        if let Some(shift) = &self.shift {
            if shift.period == 0 {
                return Err("regime shift period must be nonzero".into());
            }
            if shift.period >= self.phases {
                return Err(format!(
                    "regime shift period {} must leave room for both regimes in {} phases",
                    shift.period, self.phases
                ));
            }
            let frac_sum = shift.persistent_frac + shift.medium_frac;
            if !(0.0..=1.0).contains(&shift.persistent_frac)
                || !(0.0..=1.0).contains(&shift.medium_frac)
                || frac_sum > 1.0
            {
                return Err(format!(
                    "shift persistent ({}) + medium ({}) fractions must fit in [0,1]",
                    shift.persistent_frac, shift.medium_frac
                ));
            }
            if shift.flood <= 0.0 || !shift.flood.is_finite() {
                return Err(format!("shift flood weight {} must be positive", shift.flood));
            }
        }
        Ok(())
    }
}

/// Builder for [`WorkloadProfile`] (see `C-BUILDER`).
#[derive(Debug, Clone)]
pub struct WorkloadProfileBuilder {
    profile: WorkloadProfile,
}

impl WorkloadProfileBuilder {
    /// Sets the human-readable description.
    pub fn description(mut self, d: impl Into<String>) -> Self {
        self.profile.description = d.into();
        self
    }

    /// Sets the run duration in seconds.
    pub fn duration_secs(mut self, secs: f64) -> Self {
        self.profile.duration_secs = secs;
        self
    }

    /// Sets the application footprint in kilobytes.
    pub fn footprint_kb(mut self, kb: u64) -> Self {
        self.profile.footprint_bytes = kb * 1024;
        self
    }

    /// Sets the number of program phases.
    pub fn phases(mut self, phases: u32) -> Self {
        self.profile.phases = phases;
        self
    }

    /// Sets the long-lived and medium-lived byte fractions.
    pub fn lifetime_mix(mut self, persistent: f64, medium: f64) -> Self {
        self.profile.persistent_frac = persistent;
        self.profile.medium_frac = medium;
        self
    }

    /// Sets the shared-library count and the fraction unmapped mid-run.
    pub fn dlls(mut self, count: u32, unload_frac: f64) -> Self {
        self.profile.dll_count = count;
        self.profile.dll_unload_frac = unload_frac;
        self
    }

    /// Sets how often long-lived regions re-run per phase.
    pub fn hot_revisits(mut self, revisits: u32) -> Self {
        self.profile.hot_revisits = revisits;
        self
    }

    /// Sets warmup and revisit iteration counts.
    pub fn iteration_tuning(mut self, warmup_extra: u32, revisit: u32) -> Self {
        self.profile.warmup_extra_iters = warmup_extra;
        self.profile.revisit_iters = revisit;
        self
    }

    /// Overrides the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.profile.seed = seed;
        self
    }

    /// Sets the number of guest threads (see [`WorkloadProfile::threads`]).
    pub fn threads(mut self, threads: u32) -> Self {
        self.profile.threads = threads;
        self
    }

    /// Enables mid-run regime alternation (see [`RegimeShift`]).
    pub fn regime_shift(mut self, shift: RegimeShift) -> Self {
        self.profile.shift = Some(shift);
        self
    }

    /// Finalizes the profile.
    ///
    /// # Panics
    ///
    /// Panics if the assembled profile fails [`WorkloadProfile::validate`];
    /// builder misuse is a programming error.
    pub fn build(self) -> WorkloadProfile {
        if let Err(e) = self.profile.validate() {
            panic!("invalid workload profile: {e}");
        }
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_valid() {
        let p = WorkloadProfile::builder("x", Suite::Spec2000).build();
        assert!(p.validate().is_ok());
        assert_eq!(p.suite, Suite::Spec2000);
    }

    #[test]
    fn seed_is_name_derived_and_stable() {
        let a = WorkloadProfile::builder("gcc", Suite::Spec2000).build();
        let b = WorkloadProfile::builder("gcc", Suite::Spec2000).build();
        let c = WorkloadProfile::builder("gzip", Suite::Spec2000).build();
        assert_eq!(a.seed, b.seed);
        assert_ne!(a.seed, c.seed);
    }

    #[test]
    fn scaled_down_clamps() {
        let p = WorkloadProfile::builder("x", Suite::Spec2000)
            .footprint_kb(1024)
            .build();
        assert_eq!(p.scaled_down(4).footprint_bytes, 256 * 1024);
        // Clamped to the 8 KB minimum.
        assert_eq!(p.scaled_down(1_000_000).footprint_bytes, 8 * 1024);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_rejected() {
        let p = WorkloadProfile::builder("x", Suite::Spec2000).build();
        let _ = p.scaled_down(0);
    }

    #[test]
    fn validation_catches_bad_fractions() {
        let mut p = WorkloadProfile::builder("x", Suite::Spec2000).build();
        p.persistent_frac = 0.8;
        p.medium_frac = 0.5;
        assert!(p.validate().is_err());
        p.medium_frac = 0.1;
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_catches_zero_duration_and_phases() {
        let mut p = WorkloadProfile::builder("x", Suite::Spec2000).build();
        p.duration_secs = 0.0;
        assert!(p.validate().is_err());
        p.duration_secs = 1.0;
        p.phases = 0;
        assert!(p.validate().is_err());
        p.phases = 2;
        p.threads = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn threads_default_to_one() {
        let p = WorkloadProfile::builder("x", Suite::Spec2000).build();
        assert_eq!(p.threads, 1);
        let p = WorkloadProfile::builder("x", Suite::Spec2000)
            .threads(4)
            .build();
        assert_eq!(p.threads, 4);
    }

    #[test]
    #[should_panic(expected = "invalid workload profile")]
    fn builder_panics_on_invalid() {
        let _ = WorkloadProfile::builder("x", Suite::Spec2000)
            .lifetime_mix(0.9, 0.9)
            .build();
    }
}
