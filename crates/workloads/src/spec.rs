//! The 26 SPEC CPU2000 benchmark profiles.
//!
//! Calibration targets (paper, Section 3): unbounded code caches averaging
//! ≈ 736 KB with `gcc` ≈ 4.3 MB and `vortex` ≈ 1.6 MB second-largest
//! (Figure 1a); trace insertion rates below 5 KB/s for most benchmarks,
//! with `gcc` ≈ 232 KB/s and `perlbmk` ≈ 89 KB/s outliers (Figure 3a);
//! essentially no unmapped-memory deletions (Figure 4); U-shaped trace
//! lifetimes (Figure 6a).
//!
//! Footprints are set to `targetCache / expansion` with expansion ≈ 4.4×
//! (the emergent duplication factor of our NET frontend, Figure 2's
//! "roughly 500%" analogue); durations are set so insertion rates land in
//! the right regime.

use crate::profile::{Suite, WorkloadProfile};

/// Per-benchmark shape knobs beyond the common SPEC defaults.
struct SpecParams {
    name: &'static str,
    description: &'static str,
    /// Target unbounded cache size in KB (drives the footprint).
    cache_kb: u64,
    duration_secs: f64,
    phases: u32,
    persistent_frac: f64,
    medium_frac: f64,
    hot_revisits: u32,
}

/// Emergent code-expansion factor of the synthetic workloads: final cache
/// (basic blocks + traces) over static footprint.
pub(crate) const EXPANSION: f64 = 4.4;

const PARAMS: &[SpecParams] = &[
    // ---- CINT2000 ----------------------------------------------------
    SpecParams {
        name: "gzip",
        description: "Compression",
        cache_kb: 300,
        duration_secs: 120.0,
        phases: 8,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 9,
    },
    SpecParams {
        name: "vpr",
        description: "FPGA Placement",
        cache_kb: 500,
        duration_secs: 140.0,
        phases: 6,
        persistent_frac: 0.14,
        medium_frac: 0.16,
        hot_revisits: 3,
    },
    SpecParams {
        name: "gcc",
        description: "C Compiler",
        cache_kb: 4300,
        duration_secs: 18.5,
        phases: 14,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 3,
    },
    SpecParams {
        name: "mcf",
        description: "Comb. Optimization",
        cache_kb: 250,
        duration_secs: 180.0,
        phases: 5,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 9,
    },
    SpecParams {
        name: "crafty",
        description: "Chess",
        cache_kb: 900,
        duration_secs: 200.0,
        phases: 12,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 10,
    },
    SpecParams {
        name: "parser",
        description: "Word Processing",
        cache_kb: 600,
        duration_secs: 160.0,
        phases: 7,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 4,
    },
    SpecParams {
        name: "eon",
        description: "Ray Tracer",
        cache_kb: 1100,
        duration_secs: 250.0,
        phases: 6,
        persistent_frac: 0.14,
        medium_frac: 0.16,
        hot_revisits: 4,
    },
    SpecParams {
        name: "perlbmk",
        description: "Perl Interpreter",
        cache_kb: 1500,
        duration_secs: 17.0,
        phases: 10,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 6,
    },
    SpecParams {
        name: "gap",
        description: "Group Theory",
        cache_kb: 800,
        duration_secs: 180.0,
        phases: 6,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 8,
    },
    SpecParams {
        name: "vortex",
        description: "OO Database",
        cache_kb: 1600,
        duration_secs: 340.0,
        phases: 9,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 9,
    },
    SpecParams {
        name: "bzip2",
        description: "Compression",
        cache_kb: 350,
        duration_secs: 130.0,
        phases: 6,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 10,
    },
    SpecParams {
        name: "twolf",
        description: "Place & Route",
        cache_kb: 550,
        duration_secs: 170.0,
        phases: 7,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 7,
    },
    // ---- CFP2000 -----------------------------------------------------
    SpecParams {
        name: "wupwise",
        description: "Quantum Chromodynamics",
        cache_kb: 400,
        duration_secs: 150.0,
        phases: 6,
        persistent_frac: 0.12,
        medium_frac: 0.04,
        hot_revisits: 12,
    },
    SpecParams {
        name: "swim",
        description: "Shallow Water Model",
        cache_kb: 250,
        duration_secs: 160.0,
        phases: 5,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 9,
    },
    SpecParams {
        name: "mgrid",
        description: "Multi-grid Solver",
        cache_kb: 300,
        duration_secs: 170.0,
        phases: 5,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 9,
    },
    SpecParams {
        name: "applu",
        description: "Parabolic PDEs",
        cache_kb: 500,
        duration_secs: 180.0,
        phases: 6,
        persistent_frac: 0.14,
        medium_frac: 0.16,
        hot_revisits: 3,
    },
    SpecParams {
        name: "mesa",
        description: "3-D Graphics",
        cache_kb: 900,
        duration_secs: 200.0,
        phases: 7,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 7,
    },
    SpecParams {
        name: "galgel",
        description: "Fluid Dynamics",
        cache_kb: 600,
        duration_secs: 180.0,
        phases: 7,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 7,
    },
    SpecParams {
        name: "art",
        description: "Neural Network",
        cache_kb: 150,
        duration_secs: 140.0,
        phases: 2,
        persistent_frac: 0.45,
        medium_frac: 0.05,
        hot_revisits: 10,
    },
    SpecParams {
        name: "equake",
        description: "Seismic Simulation",
        cache_kb: 300,
        duration_secs: 150.0,
        phases: 6,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 9,
    },
    SpecParams {
        name: "facerec",
        description: "Face Recognition",
        cache_kb: 500,
        duration_secs: 160.0,
        phases: 6,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 8,
    },
    SpecParams {
        name: "ammp",
        description: "Computational Chemistry",
        cache_kb: 450,
        duration_secs: 170.0,
        phases: 5,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 4,
    },
    SpecParams {
        name: "lucas",
        description: "Primality Testing",
        cache_kb: 300,
        duration_secs: 150.0,
        phases: 5,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 9,
    },
    SpecParams {
        name: "fma3d",
        description: "Crash Simulation",
        cache_kb: 1200,
        duration_secs: 280.0,
        phases: 6,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 8,
    },
    SpecParams {
        name: "sixtrack",
        description: "Particle Accelerator",
        cache_kb: 1400,
        duration_secs: 300.0,
        phases: 8,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 4,
    },
    SpecParams {
        name: "apsi",
        description: "Meteorology",
        cache_kb: 700,
        duration_secs: 180.0,
        phases: 7,
        persistent_frac: 0.14,
        medium_frac: 0.04,
        hot_revisits: 7,
    },
];

/// All 26 SPEC CPU2000 profiles, in suite order.
pub fn spec2000() -> Vec<WorkloadProfile> {
    PARAMS
        .iter()
        .map(|p| {
            let footprint_kb = ((p.cache_kb as f64) / EXPANSION).round() as u64;
            WorkloadProfile::builder(p.name, Suite::Spec2000)
                .description(p.description)
                .duration_secs(p.duration_secs)
                .footprint_kb(footprint_kb.max(16))
                .phases(p.phases)
                .lifetime_mix(p.persistent_frac, p.medium_frac)
                .dlls(2, 0.0) // libc/libm: loaded once, never unmapped
                .hot_revisits(p.hot_revisits)
                .iteration_tuning(25, 6)
                .build()
        })
        .collect()
}

/// Looks up one SPEC profile by name.
pub fn spec_benchmark(name: &str) -> Option<WorkloadProfile> {
    spec2000().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_26_benchmarks_present() {
        let all = spec2000();
        assert_eq!(all.len(), 26);
        for p in &all {
            assert!(p.validate().is_ok(), "{} invalid", p.name);
            assert_eq!(p.suite, Suite::Spec2000);
            assert_eq!(p.dll_unload_frac, 0.0, "SPEC must not unmap code");
        }
    }

    #[test]
    fn gcc_is_largest_then_vortex() {
        let all = spec2000();
        let mut sorted: Vec<_> = all.iter().collect();
        sorted.sort_by_key(|p| std::cmp::Reverse(p.footprint_bytes));
        assert_eq!(sorted[0].name, "gcc");
        assert_eq!(sorted[1].name, "vortex");
    }

    #[test]
    fn art_is_smallest() {
        let all = spec2000();
        let min = all.iter().min_by_key(|p| p.footprint_bytes).unwrap();
        assert_eq!(min.name, "art");
    }

    #[test]
    fn insertion_rate_regime_matches_figure3() {
        // Estimated insertion rate = projected cache size / duration.
        let all = spec2000();
        let rate =
            |p: &WorkloadProfile| p.footprint_bytes as f64 * EXPANSION / 1024.0 / p.duration_secs;
        let fast: Vec<&str> = all
            .iter()
            .filter(|p| rate(p) > 20.0)
            .map(|p| p.name.as_str())
            .collect();
        assert!(fast.contains(&"gcc"));
        assert!(fast.contains(&"perlbmk"));
        assert!(fast.len() <= 3, "only gcc/perlbmk should be fast: {fast:?}");
        let slow = all.iter().filter(|p| rate(p) < 6.0).count();
        assert!(slow >= 20, "most SPEC benchmarks insert < ~5 KB/s");
    }

    #[test]
    fn lookup_by_name() {
        assert!(spec_benchmark("crafty").is_some());
        assert!(spec_benchmark("doom").is_none());
    }

    #[test]
    fn average_cache_target_near_paper() {
        let all = spec2000();
        let avg_cache_kb = all
            .iter()
            .map(|p| p.footprint_bytes as f64 * EXPANSION / 1024.0)
            .sum::<f64>()
            / all.len() as f64;
        // Paper: 736 KB average for SPEC2000.
        assert!(
            (500.0..1100.0).contains(&avg_cache_kb),
            "average projected cache {avg_cache_kb:.0} KB too far from 736 KB"
        );
    }
}
