//! The 12 interactive Windows application profiles of Table 1.
//!
//! Calibration targets (paper, Section 3): unbounded code caches averaging
//! ≈ 16.1 MB with `word` ≈ 34.2 MB (Figure 1b) — a twenty-fold increase
//! over SPEC; insertion rates above 5 KB/s for everything except
//! `solitaire` (Figure 3b); and ≈ 15% of trace bytes deleted due to DLL
//! unmapping (Figure 4). Durations are Table 1's measured seconds of
//! manual user interaction.

use crate::profile::{Suite, WorkloadProfile};
use crate::spec::EXPANSION;

struct InteractiveParams {
    name: &'static str,
    description: &'static str,
    /// Table 1 "Seconds" column.
    duration_secs: f64,
    /// Target unbounded cache size in KB.
    cache_kb: u64,
    phases: u32,
    persistent_frac: f64,
    medium_frac: f64,
    dll_count: u32,
    dll_unload_frac: f64,
    hot_revisits: u32,
}

const PARAMS: &[InteractiveParams] = &[
    InteractiveParams {
        name: "access",
        description: "Database App",
        duration_secs: 202.0,
        cache_kb: 12_000,
        phases: 9,
        persistent_frac: 0.16,
        medium_frac: 0.06,
        dll_count: 14,
        dll_unload_frac: 0.50,
        hot_revisits: 5,
    },
    InteractiveParams {
        name: "acroread",
        description: "PDF Viewer",
        duration_secs: 376.0,
        cache_kb: 25_000,
        phases: 10,
        persistent_frac: 0.16,
        medium_frac: 0.06,
        dll_count: 16,
        dll_unload_frac: 0.60,
        hot_revisits: 5,
    },
    InteractiveParams {
        name: "defrag",
        description: "System Util",
        duration_secs: 46.0,
        cache_kb: 3_800,
        phases: 6,
        persistent_frac: 0.16,
        medium_frac: 0.05,
        dll_count: 8,
        dll_unload_frac: 0.20,
        hot_revisits: 10,
    },
    InteractiveParams {
        name: "excel",
        description: "Spreadsheet App",
        duration_secs: 208.0,
        cache_kb: 20_000,
        phases: 10,
        persistent_frac: 0.18,
        medium_frac: 0.06,
        dll_count: 16,
        dll_unload_frac: 0.50,
        hot_revisits: 6,
    },
    InteractiveParams {
        name: "iexplore",
        description: "Web Browser",
        duration_secs: 247.0,
        cache_kb: 14_000,
        phases: 12,
        persistent_frac: 0.15,
        medium_frac: 0.06,
        dll_count: 18,
        dll_unload_frac: 0.70,
        hot_revisits: 5,
    },
    InteractiveParams {
        name: "mpeg",
        description: "Media Player",
        duration_secs: 257.0,
        cache_kb: 9_500,
        phases: 6,
        persistent_frac: 0.18,
        medium_frac: 0.05,
        dll_count: 10,
        dll_unload_frac: 0.30,
        hot_revisits: 7,
    },
    InteractiveParams {
        name: "outlook",
        description: "E-Mail App",
        duration_secs: 196.0,
        cache_kb: 17_500,
        phases: 10,
        persistent_frac: 0.16,
        medium_frac: 0.05,
        dll_count: 16,
        dll_unload_frac: 0.60,
        hot_revisits: 5,
    },
    InteractiveParams {
        name: "pinball",
        description: "3D Game Demo",
        duration_secs: 372.0,
        cache_kb: 12_000,
        phases: 8,
        persistent_frac: 0.16,
        medium_frac: 0.05,
        dll_count: 10,
        dll_unload_frac: 0.40,
        hot_revisits: 8,
    },
    InteractiveParams {
        name: "powerpoint",
        description: "Presentation",
        duration_secs: 173.0,
        cache_kb: 15_000,
        phases: 9,
        persistent_frac: 0.16,
        medium_frac: 0.06,
        dll_count: 15,
        dll_unload_frac: 0.50,
        hot_revisits: 5,
    },
    InteractiveParams {
        name: "solitaire",
        description: "Game",
        duration_secs: 335.0,
        cache_kb: 1_600,
        phases: 8,
        persistent_frac: 0.16,
        medium_frac: 0.05,
        dll_count: 6,
        dll_unload_frac: 0.30,
        hot_revisits: 6,
    },
    InteractiveParams {
        name: "winzip",
        description: "Compression",
        duration_secs: 92.0,
        cache_kb: 6_000,
        phases: 6,
        persistent_frac: 0.16,
        medium_frac: 0.05,
        dll_count: 10,
        dll_unload_frac: 0.40,
        hot_revisits: 5,
    },
    InteractiveParams {
        name: "word",
        description: "Word Processor",
        duration_secs: 212.0,
        cache_kb: 34_200,
        phases: 12,
        persistent_frac: 0.18,
        medium_frac: 0.06,
        dll_count: 20,
        dll_unload_frac: 0.50,
        hot_revisits: 5,
    },
];

/// All 12 interactive Windows application profiles, in Table 1 order.
pub fn interactive() -> Vec<WorkloadProfile> {
    PARAMS
        .iter()
        .map(|p| {
            let footprint_kb = ((p.cache_kb as f64) / EXPANSION).round() as u64;
            WorkloadProfile::builder(p.name, Suite::Interactive)
                .description(p.description)
                .duration_secs(p.duration_secs)
                .footprint_kb(footprint_kb)
                .phases(p.phases)
                .lifetime_mix(p.persistent_frac, p.medium_frac)
                .dlls(p.dll_count, p.dll_unload_frac)
                .hot_revisits(p.hot_revisits)
                .iteration_tuning(25, 6)
                .build()
        })
        .collect()
}

/// Looks up one interactive profile by name.
pub fn interactive_benchmark(name: &str) -> Option<WorkloadProfile> {
    interactive().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_12_table1_entries_present() {
        let all = interactive();
        assert_eq!(all.len(), 12);
        let names: Vec<&str> = all.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "access",
                "acroread",
                "defrag",
                "excel",
                "iexplore",
                "mpeg",
                "outlook",
                "pinball",
                "powerpoint",
                "solitaire",
                "winzip",
                "word",
            ]
        );
        for p in &all {
            assert!(p.validate().is_ok(), "{} invalid", p.name);
            assert_eq!(p.suite, Suite::Interactive);
        }
    }

    #[test]
    fn table1_durations_match() {
        let get = |n: &str| interactive_benchmark(n).unwrap().duration_secs;
        assert_eq!(get("access"), 202.0);
        assert_eq!(get("acroread"), 376.0);
        assert_eq!(get("defrag"), 46.0);
        assert_eq!(get("excel"), 208.0);
        assert_eq!(get("iexplore"), 247.0);
        assert_eq!(get("mpeg"), 257.0);
        assert_eq!(get("outlook"), 196.0);
        assert_eq!(get("pinball"), 372.0);
        assert_eq!(get("powerpoint"), 173.0);
        assert_eq!(get("solitaire"), 335.0);
        assert_eq!(get("winzip"), 92.0);
        assert_eq!(get("word"), 212.0);
    }

    #[test]
    fn word_is_largest_and_average_near_16mb() {
        let all = interactive();
        let max = all.iter().max_by_key(|p| p.footprint_bytes).unwrap();
        assert_eq!(max.name, "word");
        let avg_mb = all
            .iter()
            .map(|p| p.footprint_bytes as f64 * EXPANSION / (1024.0 * 1024.0))
            .sum::<f64>()
            / all.len() as f64;
        // Paper: 16.1 MB average.
        assert!(
            (11.0..21.0).contains(&avg_mb),
            "average projected cache {avg_mb:.1} MB too far from 16.1 MB"
        );
    }

    #[test]
    fn twenty_fold_increase_over_spec() {
        let spec_avg = crate::spec::spec2000()
            .iter()
            .map(|p| p.footprint_bytes as f64)
            .sum::<f64>()
            / 26.0;
        let inter_avg = interactive()
            .iter()
            .map(|p| p.footprint_bytes as f64)
            .sum::<f64>()
            / 12.0;
        let factor = inter_avg / spec_avg;
        assert!(
            (10.0..30.0).contains(&factor),
            "interactive/SPEC footprint ratio {factor:.1} should be ~20x"
        );
    }

    #[test]
    fn only_solitaire_below_5kbps() {
        let all = interactive();
        let slow: Vec<&str> = all
            .iter()
            .filter(|p| p.footprint_bytes as f64 * EXPANSION / 1024.0 / p.duration_secs < 5.0)
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(slow, ["solitaire"]);
    }

    #[test]
    fn all_interactive_apps_unmap_dlls() {
        for p in interactive() {
            assert!(p.dll_unload_frac > 0.0, "{} must unmap DLLs", p.name);
            assert!(p.dll_count >= 6);
        }
    }
}
