//! # gencache-workloads
//!
//! Synthetic benchmark workloads for the `gencache` reproduction of
//! *Generational Cache Management of Code Traces in Dynamic Optimization
//! Systems* (Hazelwood & Smith, MICRO 2003).
//!
//! The paper evaluated DynamoRIO over SPEC CPU2000 and twelve large
//! interactive Windows applications (Table 1). Neither the applications
//! nor DynamoRIO's verbose logs are available, so this crate synthesizes
//! equivalent workloads: each benchmark is a [`WorkloadProfile`] whose
//! parameters (footprint, phase structure, lifetime mix, DLL churn) are
//! calibrated to reproduce the paper's characterization — cache sizes
//! (Figure 1), code expansion (Figure 2), insertion rates (Figure 3),
//! unmapped-memory deletions (Figure 4), and U-shaped trace lifetimes
//! (Figure 6).
//!
//! A profile becomes an [`ExecutionPlan`] (a synthetic program image plus
//! a phase schedule), which streams [`TimedEvent`]s — executed basic
//! blocks and module unloads — for the DBT frontend to consume.
//!
//! ```
//! use gencache_workloads::{interactive_benchmark, ExecutionPlan};
//!
//! // A down-scaled `word` for quick experiments.
//! let profile = interactive_benchmark("word").unwrap().scaled_down(256);
//! let plan = ExecutionPlan::from_profile(&profile)?;
//! let events: Vec<_> = plan.stream().take(100).collect();
//! assert_eq!(events.len(), 100);
//! # Ok::<(), gencache_workloads::PlanError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adversarial;
mod events;
mod interactive;
mod plan;
mod profile;
mod spec;
mod stream;

pub use adversarial::{adversarial, adversarial_benchmark};
pub use events::{TimedEvent, WorkloadEvent};
pub use interactive::{interactive, interactive_benchmark};
pub use plan::{ExecutionPlan, PlanError, PlanStep, PlannedRegion, Role};
pub use profile::{RegimeShift, Suite, WorkloadProfile, WorkloadProfileBuilder};
pub use spec::{spec2000, spec_benchmark};
pub use stream::EventStream;

/// Every benchmark profile in the evaluation: 26 SPEC2000 followed by the
/// 12 interactive applications.
pub fn all_benchmarks() -> Vec<WorkloadProfile> {
    let mut all = spec2000();
    all.extend(interactive());
    all
}

/// Looks up any benchmark by name: both paper suites, plus the
/// adversarial stress profiles (which stay out of [`all_benchmarks`]).
pub fn benchmark(name: &str) -> Option<WorkloadProfile> {
    spec_benchmark(name)
        .or_else(|| interactive_benchmark(name))
        .or_else(|| adversarial_benchmark(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_suite_has_38_benchmarks() {
        assert_eq!(all_benchmarks().len(), 38);
    }

    #[test]
    fn cross_suite_lookup() {
        assert_eq!(benchmark("gcc").unwrap().suite, Suite::Spec2000);
        assert_eq!(benchmark("word").unwrap().suite, Suite::Interactive);
        assert!(benchmark("nope").is_none());
    }

    #[test]
    fn names_are_unique() {
        let all = all_benchmarks();
        let mut names: Vec<&str> = all.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}
