//! Adversarial stress profiles: workloads built so that *no single
//! static cache configuration wins*.
//!
//! The paper's benchmarks are stationary — one lifetime mix for the
//! whole run — so some fixed §6 grid point is always (near-)optimal for
//! each. These profiles use [`RegimeShift`] to alternate between a calm,
//! persistent-heavy regime (rewarding a large persistent cache) and a
//! transient flood regime (rewarding a large nursery and punishing
//! anything that hoards capacity for long-lived code). Whatever split a
//! static configuration picks, one regime penalizes it; the adaptive
//! policy engine is judged on beating every static grid point here,
//! on the oracle-regret scale.
//!
//! These profiles are reachable through
//! [`benchmark`](crate::benchmark) / [`adversarial_benchmark`] but are
//! deliberately **not** part of [`all_benchmarks`](crate::all_benchmarks):
//! they are stress instruments, not part of the paper's 38-benchmark
//! evaluation roster.

use crate::profile::{RegimeShift, Suite, WorkloadProfile};

/// The adversarial stress profiles, in display order.
pub fn adversarial() -> Vec<WorkloadProfile> {
    vec![
        // One hard mid-run flip: a long calm half with a large stable
        // hot set, then a churning half where the hot set is replaced
        // and transient code floods in at 3x the calm rate. Static
        // persistent-heavy layouts win the first half and lose the
        // second; nursery-heavy layouts the reverse.
        WorkloadProfile::builder("phaseflip", Suite::Adversarial)
            .description("Mid-run regime flip: calm/persistent, then flooding/transient")
            .duration_secs(120.0)
            .footprint_kb(4_000)
            .phases(8)
            .lifetime_mix(0.34, 0.04)
            .dlls(10, 0.70)
            .hot_revisits(6)
            .iteration_tuning(25, 8)
            .regime_shift(RegimeShift {
                period: 4,
                persistent_frac: 0.05,
                medium_frac: 0.03,
                flood: 3.0,
            })
            .build(),
        // Rapid alternation every other phase with a violent flood
        // factor and heavy DLL unmapping: re-miss churn spikes each
        // time the regime turns over, and the productive layout flips
        // with it — adversarial for any fixed split and for promotion
        // rules tuned to either regime.
        WorkloadProfile::builder("churnstorm", Suite::Adversarial)
            .description("Alternating calm/flood phases with heavy DLL churn")
            .duration_secs(90.0)
            .footprint_kb(3_000)
            .phases(10)
            .lifetime_mix(0.30, 0.03)
            .dlls(12, 0.85)
            .hot_revisits(5)
            .iteration_tuning(22, 7)
            .regime_shift(RegimeShift {
                period: 2,
                persistent_frac: 0.04,
                medium_frac: 0.02,
                flood: 4.0,
            })
            .build(),
    ]
}

/// Looks up one adversarial profile by name.
pub fn adversarial_benchmark(name: &str) -> Option<WorkloadProfile> {
    adversarial().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ExecutionPlan, PlanStep};
    use crate::plan::Role;

    #[test]
    fn profiles_are_valid_and_shifted() {
        let all = adversarial();
        assert_eq!(all.len(), 2);
        for p in &all {
            assert!(p.validate().is_ok(), "{} invalid", p.name);
            assert_eq!(p.suite, Suite::Adversarial);
            assert!(p.shift.is_some(), "{} must carry a regime shift", p.name);
        }
    }

    #[test]
    fn lookup_finds_both() {
        assert!(adversarial_benchmark("phaseflip").is_some());
        assert!(adversarial_benchmark("churnstorm").is_some());
        assert!(adversarial_benchmark("calm").is_none());
    }

    #[test]
    fn plans_are_deterministic() {
        for p in adversarial() {
            let p = p.scaled_down(64);
            let a = ExecutionPlan::from_profile(&p).unwrap();
            let b = ExecutionPlan::from_profile(&p).unwrap();
            assert_eq!(a.total_exec_events(), b.total_exec_events());
            assert_eq!(a.steps().len(), b.steps().len());
        }
    }

    #[test]
    fn flood_phases_host_more_transient_code() {
        let p = adversarial_benchmark("phaseflip").unwrap().scaled_down(16);
        let shift = p.shift.unwrap();
        let plan = ExecutionPlan::from_profile(&p).unwrap();
        let mut calm = 0u64;
        let mut flood = 0u64;
        for r in plan.regions() {
            if let Role::PhaseLocal { phase } = r.role {
                if (phase / shift.period) % 2 == 1 {
                    flood += r.path_bytes;
                } else {
                    calm += r.path_bytes;
                }
            }
        }
        assert!(
            flood > calm,
            "flood phases must carry more transient code (calm {calm}, flood {flood})"
        );
    }

    #[test]
    fn both_regimes_run_their_own_hot_set() {
        // The schedule must keep executing *some* persistent region in
        // every phase of both regimes (each regime has its own group).
        let p = adversarial_benchmark("churnstorm").unwrap().scaled_down(16);
        let plan = ExecutionPlan::from_profile(&p).unwrap();
        let persistent: Vec<usize> = plan
            .regions()
            .iter()
            .enumerate()
            .filter(|(_, r)| r.role == Role::Persistent)
            .map(|(i, _)| i)
            .collect();
        assert!(!persistent.is_empty());
        let runs_of_persistent = plan
            .steps()
            .iter()
            .filter(|s| {
                matches!(s, PlanStep::Run { region, .. } if persistent.contains(region))
            })
            .count();
        assert!(runs_of_persistent > 0);
    }
}
