//! The dynamic event vocabulary: what a running program looks like to the
//! dynamic optimizer.

use gencache_program::{Addr, ModuleId, Time};
use serde::{Deserialize, Serialize};

/// One observable action of the guest program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadEvent {
    /// The program executed the basic block starting at `addr`.
    Exec {
        /// Start address of the executed block.
        addr: Addr,
    },
    /// The program unmapped a module (e.g. `FreeLibrary` on a DLL). The
    /// optimizer must immediately delete every cached trace built from
    /// this module's code (Section 3.4).
    Unload {
        /// The unmapped module.
        module: ModuleId,
    },
}

/// A [`WorkloadEvent`] stamped with simulated program time and the guest
/// thread it occurred on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// When the event occurred on the program clock.
    pub time: Time,
    /// The guest thread that performed the action (0 for single-threaded
    /// workloads).
    pub thread: u32,
    /// What happened.
    pub event: WorkloadEvent,
}

impl TimedEvent {
    /// Convenience constructor for thread 0.
    pub fn new(time: Time, event: WorkloadEvent) -> Self {
        TimedEvent {
            time,
            thread: 0,
            event,
        }
    }

    /// Constructor with an explicit guest thread.
    pub fn with_thread(time: Time, thread: u32, event: WorkloadEvent) -> Self {
        TimedEvent {
            time,
            thread,
            event,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let e = TimedEvent::new(
            Time::from_micros(5),
            WorkloadEvent::Exec {
                addr: Addr::new(0x1000),
            },
        );
        assert_eq!(e.time, Time::from_micros(5));
        assert_eq!(
            e.event,
            WorkloadEvent::Exec {
                addr: Addr::new(0x1000)
            }
        );
        assert_eq!(e.thread, 0);
        let t = TimedEvent::with_thread(Time::ZERO, 3, e.event);
        assert_eq!(t.thread, 3);
        let u = WorkloadEvent::Unload {
            module: ModuleId::new(3),
        };
        assert_ne!(e.event, u);
    }
}
