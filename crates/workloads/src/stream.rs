//! Streaming execution of an [`ExecutionPlan`].
//!
//! The stream walks the plan's steps and emits one [`TimedEvent`] per
//! executed basic block (plus unload events), never materializing the
//! whole run in memory — full-scale benchmarks produce tens of millions
//! of events.

use gencache_program::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::events::{TimedEvent, WorkloadEvent};
use crate::plan::{ExecutionPlan, PlanStep};

/// An iterator over the dynamic events of one planned run.
///
/// Timestamps are assigned by position: event `k` of `n` occurs at
/// `duration * k / n`, so the simulated clock advances uniformly with
/// executed code.
#[derive(Debug)]
pub struct EventStream<'a> {
    plan: &'a ExecutionPlan,
    step_idx: usize,
    state: Option<RunState>,
    emitted: u64,
    duration_micros: u64,
}

#[derive(Debug)]
struct RunState {
    region: usize,
    iterations_left: u32,
    variant: usize,
    pos: usize,
    exit_pending: bool,
    thread: u32,
    rng: StdRng,
}

impl<'a> EventStream<'a> {
    pub(crate) fn new(plan: &'a ExecutionPlan) -> Self {
        EventStream {
            plan,
            step_idx: 0,
            state: None,
            emitted: 0,
            duration_micros: plan.duration().as_micros(),
        }
    }

    fn now(&self) -> Time {
        let total = self.plan.total_exec_events().max(1);
        Time::from_micros(self.duration_micros * self.emitted / total)
    }

    fn begin_step(&mut self, step: PlanStep) -> Option<TimedEvent> {
        match step {
            PlanStep::Run {
                region,
                iterations,
                variant_seed,
                thread,
            } => {
                let mut rng = StdRng::seed_from_u64(variant_seed);
                let paths = self.plan.regions()[region].region.path_count();
                let variant = rng.gen_range(0..paths);
                self.state = Some(RunState {
                    region,
                    iterations_left: iterations,
                    variant,
                    pos: 0,
                    exit_pending: false,
                    thread,
                    rng,
                });
                None
            }
            PlanStep::Unload { module } => Some(TimedEvent::new(
                self.now(),
                WorkloadEvent::Unload { module },
            )),
        }
    }
}

impl Iterator for EventStream<'_> {
    type Item = TimedEvent;

    fn next(&mut self) -> Option<TimedEvent> {
        loop {
            let now = self.now();
            if let Some(state) = &mut self.state {
                let region = &self.plan.regions()[state.region].region;
                if state.exit_pending {
                    state.exit_pending = false;
                    let ev = TimedEvent::with_thread(
                        now,
                        state.thread,
                        WorkloadEvent::Exec {
                            addr: region.exit_block,
                        },
                    );
                    self.emitted += 1;
                    self.state = None;
                    return Some(ev);
                }
                let path = region.path(state.variant);
                if state.pos < path.len() {
                    let addr = path[state.pos];
                    state.pos += 1;
                    let ev =
                        TimedEvent::with_thread(now, state.thread, WorkloadEvent::Exec { addr });
                    self.emitted += 1;
                    return Some(ev);
                }
                // Iteration finished.
                state.iterations_left -= 1;
                if state.iterations_left == 0 {
                    state.exit_pending = true;
                } else {
                    state.pos = 0;
                    state.variant = state.rng.gen_range(0..region.path_count());
                }
                continue;
            }
            // No active run: advance to the next step.
            let step = *self.plan.steps().get(self.step_idx)?;
            self.step_idx += 1;
            if let Some(ev) = self.begin_step(step) {
                return Some(ev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Suite, WorkloadProfile};

    fn plan() -> ExecutionPlan {
        let p = WorkloadProfile::builder("streamtest", Suite::Interactive)
            .footprint_kb(32)
            .phases(3)
            .dlls(2, 1.0)
            .build();
        ExecutionPlan::from_profile(&p).unwrap()
    }

    #[test]
    fn exec_event_count_matches_plan() {
        let plan = plan();
        let events = plan.events();
        let execs = events
            .iter()
            .filter(|e| matches!(e.event, WorkloadEvent::Exec { .. }))
            .count() as u64;
        assert_eq!(execs, plan.total_exec_events());
    }

    #[test]
    fn timestamps_are_monotonic_and_bounded() {
        let plan = plan();
        let mut last = Time::ZERO;
        for e in plan.stream() {
            assert!(e.time >= last, "time went backwards");
            assert!(e.time <= plan.duration());
            last = e.time;
        }
        // The run should span most of the declared duration.
        assert!(last.as_secs_f64() > plan.duration().as_secs_f64() * 0.95);
    }

    #[test]
    fn stream_is_deterministic() {
        let plan = plan();
        let a = plan.events();
        let b = plan.events();
        assert_eq!(a, b);
    }

    #[test]
    fn unload_events_match_plan_steps() {
        let plan = plan();
        let expected = plan
            .steps()
            .iter()
            .filter(|s| matches!(s, PlanStep::Unload { .. }))
            .count();
        let got = plan
            .events()
            .iter()
            .filter(|e| matches!(e.event, WorkloadEvent::Unload { .. }))
            .count();
        assert_eq!(expected, got);
    }

    #[test]
    fn every_exec_address_is_a_real_block() {
        let plan = plan();
        // Unloads only happen at phase ends, after their module's code ran;
        // validate addresses against the full (never-unmapped) image by
        // checking before applying unloads. Here we simply verify against
        // the static image since nothing is ever re-mapped differently.
        for e in plan.stream() {
            if let WorkloadEvent::Exec { addr } = e.event {
                assert!(
                    plan.image().block_at(addr).is_some(),
                    "unknown block {addr}"
                );
            }
        }
    }

    #[test]
    fn branchy_regions_alternate_variants() {
        // Over a long stream, both variants of at least one branchy region
        // should be exercised. We detect this indirectly: the set of
        // distinct executed addresses should cover every variant path of
        // every region that was scheduled with enough iterations.
        let plan = plan();
        use std::collections::HashSet;
        let mut seen: HashSet<u64> = HashSet::new();
        for e in plan.stream() {
            if let WorkloadEvent::Exec { addr } = e.event {
                seen.insert(addr.as_u64());
            }
        }
        let mut multi_variant_regions = 0;
        for r in plan.regions() {
            if r.region.path_count() > 1 {
                multi_variant_regions += 1;
                // At minimum the shared prefix must have run.
                assert!(seen.contains(&r.region.path(0)[0].as_u64()));
            }
        }
        assert!(
            multi_variant_regions > 0,
            "plan should contain branchy loops"
        );
    }
}
