//! Turning a [`WorkloadProfile`] into a concrete, deterministic execution
//! plan: a synthetic program image plus a phase-structured schedule of
//! loop-region activations and module unloads.
//!
//! The planner is what encodes the paper's workload observations:
//!
//! * **U-shaped lifetimes** (Figure 6): regions are *persistent*
//!   (re-executed every phase), *phase-local* (executed in one phase,
//!   then never again), or *medium* (spanning a few phases).
//! * **Code expansion** (Figure 2): loop bodies call shared helper
//!   functions, which Next-Executed-Tail trace selection inlines into
//!   every calling trace, duplicating their code in the cache.
//! * **Unmapped memory** (Figure 4): shared libraries host phase-local
//!   code and a fraction of them are unmapped when their phase ends.

use gencache_program::{
    Addr, BuildError, ImageError, ModuleBuilder, ModuleId, ModuleKind, ProgramImage, Region, Time,
    TRACE_CREATION_THRESHOLD,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::events::TimedEvent;
use crate::profile::WorkloadProfile;
use crate::stream::EventStream;

/// The expected lifetime class of a region's traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Re-executed in every phase: long-lived traces.
    Persistent,
    /// Executed during `span` consecutive phases starting at
    /// `first_phase`: middle-lifetime traces.
    Medium {
        /// First phase in which the region runs.
        first_phase: u32,
        /// Number of consecutive phases it stays active.
        span: u32,
    },
    /// Executed only within one phase: short-lived traces.
    PhaseLocal {
        /// The region's home phase.
        phase: u32,
    },
}

/// A region of the synthetic program plus its planning metadata.
#[derive(Debug, Clone)]
pub struct PlannedRegion {
    /// The region's layout and iteration paths.
    pub region: Region,
    /// The module hosting the region's code.
    pub module: ModuleId,
    /// Expected lifetime class.
    pub role: Role,
    /// Average bytes of code executed per iteration, including called
    /// helpers — an estimate of the trace size NET will produce.
    pub path_bytes: u64,
    /// Home thread for phase-local regions; persistent regions are shared
    /// and executed by every thread in rotation.
    pub home_thread: u32,
}

/// One scheduled action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStep {
    /// Run a region's loop for `iterations` iterations, then exit it.
    Run {
        /// Index into [`ExecutionPlan::regions`].
        region: usize,
        /// Loop iterations to execute.
        iterations: u32,
        /// Seed for per-iteration path-variant choices.
        variant_seed: u64,
        /// Guest thread performing the run. Persistent (shared) regions
        /// rotate across threads; phase-local regions stay on their home
        /// thread.
        thread: u32,
    },
    /// Unmap a module.
    Unload {
        /// The module to unmap.
        module: ModuleId,
    },
}

/// Errors raised while planning a workload.
#[derive(Debug)]
pub enum PlanError {
    /// The profile failed validation.
    Profile(String),
    /// Laying out a module failed.
    Build(BuildError),
    /// Assembling the program image failed.
    Image(ImageError),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Profile(msg) => write!(f, "invalid profile: {msg}"),
            PlanError::Build(e) => write!(f, "module layout failed: {e}"),
            PlanError::Image(e) => write!(f, "image assembly failed: {e}"),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Build(e) => Some(e),
            PlanError::Image(e) => Some(e),
            PlanError::Profile(_) => None,
        }
    }
}

impl From<BuildError> for PlanError {
    fn from(e: BuildError) -> Self {
        PlanError::Build(e)
    }
}

impl From<ImageError> for PlanError {
    fn from(e: ImageError) -> Self {
        PlanError::Image(e)
    }
}

/// A fully planned benchmark run: program image, regions with roles, and
/// the step schedule. Feed it to [`ExecutionPlan::stream`] to obtain the
/// dynamic event sequence.
///
/// # Examples
///
/// ```
/// use gencache_workloads::{ExecutionPlan, Suite, WorkloadProfile};
///
/// let profile = WorkloadProfile::builder("demo", Suite::Spec2000)
///     .footprint_kb(32)
///     .build();
/// let plan = ExecutionPlan::from_profile(&profile)?;
/// assert!(plan.total_exec_events() > 0);
/// let first = plan.stream().next().unwrap();
/// assert_eq!(first.time, gencache_program::Time::ZERO);
/// # Ok::<(), gencache_workloads::PlanError>(())
/// ```
#[derive(Debug)]
pub struct ExecutionPlan {
    profile: WorkloadProfile,
    image: ProgramImage,
    regions: Vec<PlannedRegion>,
    steps: Vec<PlanStep>,
    total_exec_events: u64,
}

impl ExecutionPlan {
    /// Plans the run described by `profile`. Deterministic: the same
    /// profile (same seed) always yields an identical plan.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the profile is invalid or layout fails.
    pub fn from_profile(profile: &WorkloadProfile) -> Result<Self, PlanError> {
        profile.validate().map_err(PlanError::Profile)?;
        let mut rng = StdRng::seed_from_u64(profile.seed);

        // ---- 1. Module byte budgets -----------------------------------
        // Persistent and medium regions live in the executable (it is
        // never unmapped), so the executable must be large enough to host
        // them.
        let reserved = profile.persistent_frac + profile.medium_frac;
        let exe_frac = (0.55f64).max(reserved + 0.15).min(1.0);
        let dll_count = if exe_frac >= 0.999 {
            0
        } else {
            profile.dll_count
        };
        let exe_bytes = if dll_count == 0 {
            profile.footprint_bytes
        } else {
            (profile.footprint_bytes as f64 * exe_frac) as u64
        };
        let dll_pool = profile.footprint_bytes.saturating_sub(exe_bytes);

        // ---- 2. Lay out modules ----------------------------------------
        let mut image = ProgramImage::new();
        let mut regions: Vec<PlannedRegion> = Vec::new();

        let exe_id = ModuleId::new(0);
        let (exe_module, exe_regions) = build_module(
            &mut rng,
            exe_id,
            format!("{}.exe", profile.name),
            ModuleKind::Executable,
            Addr::new(0x0040_0000),
            exe_bytes,
        )?;
        image.map(exe_module)?;
        let exe_region_range = 0..exe_regions.len();
        regions.extend(exe_regions);

        let mut dll_home_phase: Vec<(ModuleId, u32)> = Vec::new();
        for d in 0..dll_count {
            let share = dll_pool / u64::from(dll_count);
            if share < 4096 {
                break;
            }
            let id = ModuleId::new(d + 1);
            let (module, dll_regions) = build_module(
                &mut rng,
                id,
                format!("lib{d:02}.dll"),
                ModuleKind::SharedLibrary,
                Addr::new(0x1000_0000 + u64::from(d) * 0x0100_0000),
                share,
            )?;
            image.map(module)?;
            let home = rng.gen_range(0..profile.phases);
            for mut r in dll_regions {
                r.role = Role::PhaseLocal { phase: home };
                regions.push(r);
            }
            dll_home_phase.push((id, home));
        }

        // ---- 3. Assign lifetime roles to executable regions ------------
        let total_path: u64 = regions.iter().map(|r| r.path_bytes).sum();
        let mut exe_indices: Vec<usize> = exe_region_range.collect();
        exe_indices.shuffle(&mut rng);

        let persistent_target = (total_path as f64 * profile.persistent_frac) as u64;
        let mut base_persistents: Vec<usize> = Vec::new();
        let mut alt_persistents: Vec<usize> = Vec::new();
        let mut assigned = 0u64;
        let mut cursor = 0usize;
        while cursor < exe_indices.len() && assigned < persistent_target {
            let idx = exe_indices[cursor];
            regions[idx].role = Role::Persistent;
            base_persistents.push(idx);
            assigned += regions[idx].path_bytes;
            cursor += 1;
        }
        if let Some(shift) = &profile.shift {
            // The alternate regime gets its own, disjoint long-lived
            // working set, sized by its own fraction: when the regime
            // flips, the hot set flips with it.
            let alt_target = (total_path as f64 * shift.persistent_frac) as u64;
            assigned = 0;
            while cursor < exe_indices.len() && assigned < alt_target {
                let idx = exe_indices[cursor];
                regions[idx].role = Role::Persistent;
                alt_persistents.push(idx);
                assigned += regions[idx].path_bytes;
                cursor += 1;
            }
        }
        let medium_frac = profile
            .shift
            .map_or(profile.medium_frac, |s| {
                (profile.medium_frac + s.medium_frac) / 2.0
            });
        let medium_target = (total_path as f64 * medium_frac) as u64;
        assigned = 0;
        while cursor < exe_indices.len() && assigned < medium_target {
            let idx = exe_indices[cursor];
            let span = rng.gen_range(2..=3.min(profile.phases.max(2)));
            let first_phase = if profile.phases > span {
                rng.gen_range(0..profile.phases - span)
            } else {
                0
            };
            regions[idx].role = Role::Medium { first_phase, span };
            assigned += regions[idx].path_bytes;
            cursor += 1;
        }
        // Remaining executable regions are phase-local, spread evenly —
        // or, under a regime shift, weighted so flood-regime phases
        // receive `flood`× the transient code of calm ones.
        let local_phases: Vec<u32> = match &profile.shift {
            None => (0..profile.phases).collect(),
            Some(shift) => {
                let mut slots = Vec::new();
                for p in 0..profile.phases {
                    let w = if (p / shift.period) % 2 == 1 {
                        shift.flood
                    } else {
                        1.0
                    };
                    let count = (w * 4.0).round().max(1.0) as usize;
                    slots.extend(std::iter::repeat_n(p, count));
                }
                slots
            }
        };
        for (i, &idx) in exe_indices[cursor..].iter().enumerate() {
            regions[idx].role = Role::PhaseLocal {
                phase: local_phases[i % local_phases.len()],
            };
        }

        // ---- 3b. Assign home threads ------------------------------------
        // Phase-local regions are thread-private, spread round-robin;
        // every DLL's regions stay on one thread (a worker thread runs a
        // worker library). Persistent/medium regions are shared and get
        // their executing thread at schedule time.
        if profile.threads > 1 {
            let mut next_thread = 0u32;
            let mut dll_thread: std::collections::HashMap<ModuleId, u32> =
                std::collections::HashMap::new();
            for r in regions.iter_mut() {
                if !matches!(r.role, Role::PhaseLocal { .. }) {
                    continue;
                }
                let t = if r.module == exe_id {
                    let t = next_thread;
                    next_thread = (next_thread + 1) % profile.threads;
                    t
                } else {
                    *dll_thread
                        .entry(r.module)
                        .or_insert_with(|| rng.gen_range(0..profile.threads))
                };
                r.home_thread = t;
            }
        }

        // ---- 4. Choose which DLLs get unmapped -------------------------
        let mut unload_at_phase: Vec<Vec<ModuleId>> = vec![Vec::new(); profile.phases as usize];
        for &(id, home) in &dll_home_phase {
            if rng.gen_bool(profile.dll_unload_frac) {
                unload_at_phase[home as usize].push(id);
            }
        }

        // ---- 5. Build the phase schedule --------------------------------
        // Ascending region order (the pre-shift schedule's order); the
        // alternate group is empty without a shift, so regime 0 — the
        // only regime — sees every persistent region.
        base_persistents.sort_unstable();
        alt_persistents.sort_unstable();
        let persistent_groups: [Vec<usize>; 2] = [base_persistents, alt_persistents];
        let regime_of = |p: u32| -> usize {
            profile
                .shift
                .map_or(0, |s| usize::from((p / s.period) % 2 == 1))
        };
        let mut warmed = vec![false; regions.len()];
        let mut steps: Vec<PlanStep> = Vec::new();
        let warmup = |rng: &mut StdRng, profile: &WorkloadProfile| -> u32 {
            let extra = profile.warmup_extra_iters.max(5);
            TRACE_CREATION_THRESHOLD + rng.gen_range(extra / 2..=extra * 3 / 2)
        };
        let revisit = |rng: &mut StdRng, profile: &WorkloadProfile| -> u32 {
            let base = profile.revisit_iters.max(2);
            rng.gen_range(base / 2..=base * 3 / 2).max(1)
        };

        for p in 0..profile.phases {
            let persistents: &[usize] = &persistent_groups[regime_of(p)];
            let locals: Vec<usize> = regions
                .iter()
                .enumerate()
                .filter(|(_, r)| r.role == Role::PhaseLocal { phase: p })
                .map(|(i, _)| i)
                .collect();
            let mediums: Vec<(usize, bool)> = regions
                .iter()
                .enumerate()
                .filter_map(|(i, r)| match r.role {
                    Role::Medium { first_phase, span }
                        if p >= first_phase && p < first_phase + span =>
                    {
                        Some((i, p == first_phase))
                    }
                    _ => None,
                })
                .collect();

            let chunk_count = (profile.hot_revisits as usize + 1).max(1);
            let chunk_size = locals.len().div_ceil(chunk_count).max(1);
            let chunks: Vec<&[usize]> = locals.chunks(chunk_size).collect();
            let rounds = chunk_count.max(chunks.len());

            let mut prev_chunk: &[usize] = &[];
            for round in 0..rounds {
                // Persistent regions run every round of every phase —
                // *interleaved* with the new chunk's warmups, the way an
                // event loop's dispatch code keeps running between bursts
                // of freshly loaded code. The interleaving is what keeps
                // a displaced long-lived trace alive: evicted into a
                // small probation cache mid-flood, it is re-executed
                // after the next warmup burst (a few KB of churn), not
                // after the whole flood (which would flush it and lock
                // the hierarchy into a regenerate-discard cycle).
                // Shared across threads: each step picks a (seeded)
                // random thread, so over the run every thread executes
                // every shared region and each thread's private code
                // cache ends up building its own copy of the hot traces.
                let run_persistent = |rng: &mut StdRng,
                                      steps: &mut Vec<PlanStep>,
                                      warmed: &mut [bool],
                                      per: usize| {
                    // First activation warms the region past the trace
                    // threshold — for the base group that is phase 0
                    // round 0 (the pre-shift behavior, bit for bit); an
                    // alternate-regime group warms when its first
                    // regime segment begins.
                    let iters = if !warmed[per] {
                        warmed[per] = true;
                        warmup(rng, profile)
                    } else {
                        revisit(rng, profile)
                    };
                    let thread = if profile.threads > 1 {
                        rng.gen_range(0..profile.threads)
                    } else {
                        0
                    };
                    steps.push(PlanStep::Run {
                        region: per,
                        iterations: iters,
                        variant_seed: rng.gen(),
                        thread,
                    });
                };
                let mut drained = 0usize;
                // New phase-local regions warm up (on their home thread),
                // with the round's persistent runs spread evenly between
                // them.
                let chunk: &[usize] = chunks.get(round).copied().unwrap_or(&[]);
                for (k, &r) in chunk.iter().enumerate() {
                    let iters = warmup(&mut rng, profile);
                    steps.push(PlanStep::Run {
                        region: r,
                        iterations: iters,
                        variant_seed: rng.gen(),
                        thread: regions[r].home_thread,
                    });
                    let target = (k + 1) * persistents.len() / chunk.len();
                    while drained < target {
                        run_persistent(&mut rng, &mut steps, &mut warmed, persistents[drained]);
                        drained += 1;
                    }
                }
                // The previous chunk gets one more short burst, so
                // short-lived traces see a few accesses after creation.
                for &r in prev_chunk {
                    steps.push(PlanStep::Run {
                        region: r,
                        iterations: revisit(&mut rng, profile),
                        variant_seed: rng.gen(),
                        thread: regions[r].home_thread,
                    });
                }
                // Medium regions run once per phase (in the first round).
                if round == 0 {
                    for &(m, is_first) in &mediums {
                        let iters = if is_first {
                            warmup(&mut rng, profile)
                        } else {
                            revisit(&mut rng, profile) * 2
                        };
                        steps.push(PlanStep::Run {
                            region: m,
                            iterations: iters,
                            variant_seed: rng.gen(),
                            thread: regions[m].home_thread,
                        });
                    }
                }
                // Any persistents not drained by the interleave (always
                // all of them when the round has no new chunk).
                while drained < persistents.len() {
                    run_persistent(&mut rng, &mut steps, &mut warmed, persistents[drained]);
                    drained += 1;
                }
                prev_chunk = chunk;
            }
            // Phase ends: unmap this phase's doomed DLLs.
            for &id in &unload_at_phase[p as usize] {
                steps.push(PlanStep::Unload { module: id });
            }
        }

        // ---- 6. Count execution events for exact timestamps ------------
        let total_exec_events: u64 = steps
            .iter()
            .map(|s| match *s {
                PlanStep::Run {
                    region, iterations, ..
                } => {
                    let path_len = regions[region].region.path(0).len() as u64;
                    u64::from(iterations) * path_len + 1
                }
                PlanStep::Unload { .. } => 0,
            })
            .sum();

        Ok(ExecutionPlan {
            profile: profile.clone(),
            image,
            regions,
            steps,
            total_exec_events,
        })
    }

    /// The profile this plan was built from.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// The synthetic program image (share it with the DBT frontend).
    pub fn image(&self) -> &ProgramImage {
        &self.image
    }

    /// All planned regions with their roles.
    pub fn regions(&self) -> &[PlannedRegion] {
        &self.regions
    }

    /// The step schedule.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// Exact number of block-execution events the stream will yield.
    pub fn total_exec_events(&self) -> u64 {
        self.total_exec_events
    }

    /// Total run duration on the simulated clock.
    pub fn duration(&self) -> Time {
        Time::from_secs_f64(self.profile.duration_secs)
    }

    /// Streams the dynamic events of this run.
    pub fn stream(&self) -> EventStream<'_> {
        EventStream::new(self)
    }

    /// Collects the entire event stream (tests and small plans only).
    pub fn events(&self) -> Vec<TimedEvent> {
        self.stream().collect()
    }

    /// Bytes of path (≈ future trace) code per role, for diagnostics and
    /// calibration: `(persistent, medium, phase_local)`.
    pub fn path_bytes_by_role(&self) -> (u64, u64, u64) {
        let mut out = (0u64, 0u64, 0u64);
        for r in &self.regions {
            match r.role {
                Role::Persistent => out.0 += r.path_bytes,
                Role::Medium { .. } => out.1 += r.path_bytes,
                Role::PhaseLocal { .. } => out.2 += r.path_bytes,
            }
        }
        out
    }
}

/// Lays out one module: shared helper functions plus loop regions that
/// call them. Returns the module and its regions (roles default to
/// phase-local of phase 0 and are reassigned by the planner).
fn build_module(
    rng: &mut StdRng,
    id: ModuleId,
    name: String,
    kind: ModuleKind,
    base: Addr,
    code_budget: u64,
) -> Result<(gencache_program::Module, Vec<PlannedRegion>), PlanError> {
    let capacity = code_budget * 3 + 8192;
    let mut builder = ModuleBuilder::new(id, name, kind, base, capacity);

    // Helpers take roughly a sixth of the module's code; every loop region
    // calls 2–3 of them, so helper code is heavily duplicated into traces.
    let helper_budget = (code_budget / 6).clamp(400, 64 * 1024);
    let mut helpers: Vec<(Region, u64)> = Vec::new();
    let mut spent = 0u64;
    while spent < helper_budget {
        let sizes: Vec<u32> = (0..rng.gen_range(3..=4))
            .map(|_| rng.gen_range(60..=140))
            .collect();
        let bytes: u64 = sizes.iter().map(|&s| u64::from(s)).sum();
        let h = builder.add_function(&sizes)?;
        spent += h.code_bytes;
        helpers.push((h, bytes));
    }

    let mut regions = Vec::new();
    while spent < code_budget {
        let (region, path_bytes) = if rng.gen_bool(0.25) {
            // A diamond loop: two same-block-count paths of different
            // sizes, yielding two distinct traces from one head.
            let prefix: Vec<u32> = (0..rng.gen_range(1..=2))
                .map(|_| rng.gen_range(30..=110))
                .collect();
            let k = rng.gen_range(1..=2);
            let path_a: Vec<u32> = (0..k).map(|_| rng.gen_range(30..=110)).collect();
            let path_b: Vec<u32> = (0..k).map(|_| rng.gen_range(30..=110)).collect();
            let suffix = vec![rng.gen_range(30..=110)];
            let region = builder.add_branchy_loop(&prefix, &path_a, &path_b, &suffix)?;
            let fixed: u64 = prefix.iter().chain(&suffix).map(|&s| u64::from(s)).sum();
            let avg_mid = (path_a.iter().map(|&s| u64::from(s)).sum::<u64>()
                + path_b.iter().map(|&s| u64::from(s)).sum::<u64>())
                / 2;
            (region, fixed + avg_mid)
        } else {
            // A loop calling 2–3 shared helpers.
            let body: Vec<u32> = (0..rng.gen_range(3..=5))
                .map(|_| rng.gen_range(30..=110))
                .collect();
            let n_calls = rng.gen_range(2..=3).min(body.len() - 1);
            let mut call_indices: Vec<usize> = (0..body.len() - 1).collect();
            call_indices.shuffle(rng);
            call_indices.truncate(n_calls);
            call_indices.sort_unstable();
            let chosen: Vec<(usize, usize)> = call_indices
                .iter()
                .map(|&i| (i, rng.gen_range(0..helpers.len())))
                .collect();
            let calls: Vec<(usize, &Region)> =
                chosen.iter().map(|&(i, h)| (i, &helpers[h].0)).collect();
            let region = builder.add_loop_calling(&body, &calls)?;
            let body_bytes: u64 = body.iter().map(|&s| u64::from(s)).sum();
            let helper_bytes: u64 = chosen.iter().map(|&(_, h)| helpers[h].1).sum();
            (region, body_bytes + helper_bytes)
        };
        spent += region.code_bytes;
        regions.push(PlannedRegion {
            region,
            module: id,
            role: Role::PhaseLocal { phase: 0 },
            path_bytes,
            home_thread: 0,
        });
    }

    Ok((builder.finish(), regions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Suite;

    fn small_profile() -> WorkloadProfile {
        WorkloadProfile::builder("plantest", Suite::Interactive)
            .footprint_kb(64)
            .phases(4)
            .lifetime_mix(0.25, 0.10)
            .dlls(3, 0.5)
            .build()
    }

    #[test]
    fn plan_is_deterministic() {
        let p = small_profile();
        let a = ExecutionPlan::from_profile(&p).unwrap();
        let b = ExecutionPlan::from_profile(&p).unwrap();
        assert_eq!(a.total_exec_events(), b.total_exec_events());
        assert_eq!(a.steps().len(), b.steps().len());
        assert_eq!(a.regions().len(), b.regions().len());
    }

    #[test]
    fn roles_cover_all_classes() {
        let plan = ExecutionPlan::from_profile(&small_profile()).unwrap();
        let (pers, med, local) = plan.path_bytes_by_role();
        assert!(pers > 0, "no persistent bytes");
        assert!(med > 0, "no medium bytes");
        assert!(local > 0, "no phase-local bytes");
        let total = (pers + med + local) as f64;
        // Within loose tolerance of the requested mix.
        assert!((pers as f64 / total - 0.25).abs() < 0.15);
        assert!((med as f64 / total - 0.10).abs() < 0.15);
    }

    #[test]
    fn persistent_regions_live_in_executable() {
        let plan = ExecutionPlan::from_profile(&small_profile()).unwrap();
        for r in plan.regions() {
            if matches!(r.role, Role::Persistent | Role::Medium { .. }) {
                assert_eq!(r.module, ModuleId::new(0));
            }
        }
    }

    #[test]
    fn footprint_close_to_target() {
        let p = small_profile();
        let plan = ExecutionPlan::from_profile(&p).unwrap();
        let actual = plan.image().total_code_bytes();
        let target = p.footprint_bytes;
        let ratio = actual as f64 / target as f64;
        assert!(
            (0.8..1.3).contains(&ratio),
            "footprint {actual} vs target {target} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn unloads_present_with_dll_churn() {
        let p = WorkloadProfile::builder("churny", Suite::Interactive)
            .footprint_kb(64)
            .phases(4)
            .dlls(6, 1.0)
            .build();
        let plan = ExecutionPlan::from_profile(&p).unwrap();
        let unloads = plan
            .steps()
            .iter()
            .filter(|s| matches!(s, PlanStep::Unload { .. }))
            .count();
        assert_eq!(unloads, 6, "every DLL must be unloaded at frac 1.0");
    }

    #[test]
    fn no_unloads_for_spec_defaults() {
        let p = WorkloadProfile::builder("speclike", Suite::Spec2000)
            .footprint_kb(64)
            .build();
        let plan = ExecutionPlan::from_profile(&p).unwrap();
        assert!(plan
            .steps()
            .iter()
            .all(|s| !matches!(s, PlanStep::Unload { .. })));
    }

    #[test]
    fn all_run_steps_reference_valid_regions() {
        let plan = ExecutionPlan::from_profile(&small_profile()).unwrap();
        for s in plan.steps() {
            if let PlanStep::Run {
                region, iterations, ..
            } = s
            {
                assert!(*region < plan.regions().len());
                assert!(*iterations > 0);
            }
        }
    }

    #[test]
    fn branchy_paths_have_equal_lengths() {
        let plan = ExecutionPlan::from_profile(&small_profile()).unwrap();
        for r in plan.regions() {
            let lens: Vec<usize> = r.region.iteration_paths.iter().map(|p| p.len()).collect();
            assert!(
                lens.windows(2).all(|w| w[0] == w[1]),
                "variant paths must have equal block counts for exact timing"
            );
        }
    }

    #[test]
    fn every_path_block_resolves_in_image() {
        let plan = ExecutionPlan::from_profile(&small_profile()).unwrap();
        for r in plan.regions() {
            for path in &r.region.iteration_paths {
                for &addr in path {
                    assert!(
                        plan.image().block_at(addr).is_some(),
                        "path block {addr} missing from image"
                    );
                }
            }
            assert!(plan.image().block_at(r.region.exit_block).is_some());
        }
    }
}
