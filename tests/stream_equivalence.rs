//! The streamed record path (`--stream`: recorder → bounded channel →
//! replay, no materialized `AccessLog`) must be bit-identical to the
//! materialized pipeline — comparisons, summaries, and both telemetry
//! artifacts — at jobs 1/2/8 and across channel depths.

use gencache_bench::{
    compare_all, compare_all_streamed, export_telemetry, export_telemetry_streamed, record_all,
    record_all_streamed, HarnessOptions,
};
use gencache_workloads::Suite;

fn opts(jobs: usize) -> HarnessOptions {
    HarnessOptions {
        scale: 64,
        suite: Some(Suite::Interactive),
        jobs: Some(jobs),
        stream: true,
        ..HarnessOptions::default()
    }
}

#[test]
fn streamed_pipeline_is_byte_identical_to_materialized_at_all_job_counts() {
    let runs = record_all(&opts(1));
    let materialized = serde_json::to_string(&compare_all(&opts(1), &runs)).unwrap();
    let summaries =
        serde_json::to_string(&runs.iter().map(|(_, r)| &r.summary).collect::<Vec<_>>()).unwrap();
    for jobs in [1, 2, 8] {
        let recs = record_all_streamed(&opts(jobs));
        let streamed_summaries = serde_json::to_string(
            &recs.iter().map(|(_, r)| r.summary()).collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(
            summaries, streamed_summaries,
            "streamed probe summaries with {jobs} jobs diverged from the materialized record"
        );
        let streamed = serde_json::to_string(&compare_all_streamed(&opts(jobs), &recs)).unwrap();
        assert_eq!(
            materialized, streamed,
            "streamed comparison with {jobs} jobs diverged from the materialized replay"
        );
    }
}

#[test]
fn streamed_telemetry_artifacts_are_byte_identical_to_materialized() {
    let dir = std::env::temp_dir().join(format!("gencache-stream-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = |name: &str| dir.join(name).to_str().unwrap().to_string();

    let mut materialized = opts(2);
    materialized.stream = false;
    materialized.sample = Some(16);
    materialized.events_out = Some(path("events-materialized.jsonl"));
    materialized.metrics_out = Some(path("metrics-materialized.json"));
    let runs = record_all(&materialized);
    export_telemetry(&materialized, &runs).unwrap();

    // A shallow channel forces real producer/consumer interleaving.
    let mut streamed = opts(2);
    streamed.sample = Some(16);
    streamed.stream_depth = Some(8);
    streamed.events_out = Some(path("events-streamed.jsonl"));
    streamed.metrics_out = Some(path("metrics-streamed.json"));
    let recs = record_all_streamed(&streamed);
    export_telemetry_streamed(&streamed, &recs).unwrap();

    let read = |p: &str| std::fs::read(p).unwrap();
    assert_eq!(
        read(materialized.events_out.as_ref().unwrap()),
        read(streamed.events_out.as_ref().unwrap()),
        "streamed event export differs from the materialized export"
    );
    assert_eq!(
        read(materialized.metrics_out.as_ref().unwrap()),
        read(streamed.metrics_out.as_ref().unwrap()),
        "streamed metrics document differs from the materialized document"
    );
    std::fs::remove_dir_all(&dir).ok();
}
