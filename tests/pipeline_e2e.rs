//! End-to-end pipeline integration: workload plan → DBT frontend →
//! verbose log → bounded-cache replay, across crate boundaries.

use gencache_core::{CacheModel, GenerationalConfig, GenerationalModel, UnifiedModel};
use gencache_sim::{compare_figure9, record, replay_into, AccessLog, LogRecord};
use gencache_workloads::{benchmark, Suite, WorkloadProfile};

fn small_profile() -> WorkloadProfile {
    WorkloadProfile::builder("e2e", Suite::Interactive)
        .footprint_kb(96)
        .phases(6)
        .lifetime_mix(0.18, 0.06)
        .dlls(4, 0.5)
        .hot_revisits(6)
        .duration_secs(20.0)
        .build()
}

#[test]
fn record_replay_roundtrip_preserves_access_counts() {
    let run = record(&small_profile()).expect("profile plans");
    let c = compare_figure9(&run.log);
    // Every model must see exactly the logged accesses.
    assert_eq!(c.unified.metrics.accesses, run.log.access_count());
    for g in &c.generational {
        assert_eq!(g.metrics.accesses, run.log.access_count());
        // Hits + misses account for every access.
        assert_eq!(g.metrics.hits + g.metrics.misses, g.metrics.accesses);
    }
    assert_eq!(
        c.unified.metrics.hits + c.unified.metrics.misses,
        c.unified.metrics.accesses
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let a = record(&small_profile()).expect("plans");
    let b = record(&small_profile()).expect("plans");
    assert_eq!(a.log.records, b.log.records);
    let ca = compare_figure9(&a.log);
    let cb = compare_figure9(&b.log);
    assert_eq!(ca.unified.metrics, cb.unified.metrics);
    for (x, y) in ca.generational.iter().zip(&cb.generational) {
        assert_eq!(x.metrics, y.metrics);
    }
}

#[test]
fn log_serde_roundtrip_replays_identically() {
    let run = record(&small_profile()).expect("plans");
    let json = serde_json::to_string(&run.log).expect("serializes");
    let back: AccessLog = serde_json::from_str(&json).expect("deserializes");

    let cap = (run.log.peak_trace_bytes / 2).max(1);
    let mut m1 = UnifiedModel::new(cap);
    let mut m2 = UnifiedModel::new(cap);
    replay_into(&run.log, &mut m1);
    replay_into(&back, &mut m2);
    assert_eq!(m1.metrics(), m2.metrics());
}

#[test]
fn misses_bounded_by_creations_plus_evictions() {
    let run = record(&small_profile()).expect("plans");
    let cap = (run.log.peak_trace_bytes / 2).max(1);
    let mut model = UnifiedModel::new(cap);
    replay_into(&run.log, &mut model);
    let m = model.metrics();
    // Cold misses equal trace creations; every additional miss implies a
    // prior eviction or unmap deletion of that trace.
    let cold = run.log.trace_count();
    assert!(m.misses >= cold);
    let evictions = model.ledger().eviction_events;
    assert!(
        m.misses - cold <= evictions + m.unmap_deletions,
        "{} conflict misses cannot exceed {} removals",
        m.misses - cold,
        evictions + m.unmap_deletions
    );
}

#[test]
fn unmap_events_remove_traces_from_all_models() {
    let run = record(&small_profile()).expect("plans");
    let invalidated: Vec<_> = run
        .log
        .records
        .iter()
        .filter_map(|r| match r {
            LogRecord::Invalidate { id, .. } => Some(*id),
            _ => None,
        })
        .collect();
    assert!(!invalidated.is_empty(), "profile has DLL churn");

    let cap = (run.log.peak_trace_bytes / 2).max(1);
    let mut model = GenerationalModel::new(GenerationalConfig::figure9_configs(cap)[1]);
    replay_into(&run.log, &mut model);
    // After replay no invalidated trace may linger in any generation,
    // unless the log re-created it afterwards (same module re-executed:
    // impossible here because unmapped DLLs never re-load).
    for id in invalidated {
        assert_eq!(model.generation_of(id), None, "stale trace {id} survived");
    }
}

#[test]
fn generational_capacity_accounting_holds() {
    let run = record(&small_profile()).expect("plans");
    let cap = (run.log.peak_trace_bytes / 2).max(1);
    for config in GenerationalConfig::figure9_configs(cap) {
        let mut model = GenerationalModel::new(config);
        replay_into(&run.log, &mut model);
        assert!(model.resident_bytes() <= model.capacity_bytes());
        assert_eq!(model.capacity_bytes(), cap);
    }
}

#[test]
fn pins_in_log_never_crash_replay() {
    // The default recorder injects exception pins; replaying them through
    // all models exercises the pointer-reset path end to end.
    let run = record(&small_profile()).expect("plans");
    let pins = run
        .log
        .records
        .iter()
        .filter(|r| matches!(r, LogRecord::Pin { .. }))
        .count();
    let c = compare_figure9(&run.log);
    // Sanity: the comparison completed and produced finite ratios.
    for i in 0..3 {
        assert!(c.overhead_ratio(i).is_finite());
    }
    // The small default exception rate may or may not fire here; only
    // assert consistency, not presence.
    let unpins = run
        .log
        .records
        .iter()
        .filter(|r| matches!(r, LogRecord::Unpin { .. }))
        .count();
    assert_eq!(pins, unpins);
}

#[test]
fn scaled_profiles_shrink_but_keep_shape() {
    let full = benchmark("solitaire").expect("built-in");
    let small = full.scaled_down(8);
    assert!(small.footprint_bytes < full.footprint_bytes);
    assert_eq!(small.phases, full.phases);
    assert_eq!(small.dll_count, full.dll_count);
    let run = record(&small).expect("plans");
    assert!(run.summary.traces_created > 0);
}
