//! Suite-level parallel determinism: `record_all` and `compare_all` must
//! produce byte-identical results (via serde_json) for any `--jobs`
//! value. The suite driver fans whole benchmarks across workers, so this
//! guards the reassembly-in-input-order contract end to end.

use gencache_bench::{compare_all, record_all, HarnessOptions};
use gencache_obs::SamplingParams;
use gencache_sim::{suite_costs, suite_metrics, suite_sampled, AccessLog, ModelSpec};
use gencache_workloads::Suite;

fn opts(jobs: usize) -> HarnessOptions {
    HarnessOptions {
        scale: 64,
        suite: Some(Suite::Interactive),
        jobs: Some(jobs),
        ..HarnessOptions::default()
    }
}

#[test]
fn suite_fanout_is_byte_identical_across_job_counts() {
    let baseline = record_all(&opts(1));
    let baseline_logs = serde_json::to_string(
        &baseline.iter().map(|(_, r)| &r.log).collect::<Vec<_>>(),
    )
    .unwrap();
    let baseline_cmp = serde_json::to_string(&compare_all(&opts(1), &baseline)).unwrap();
    for jobs in [2, 8] {
        let runs = record_all(&opts(jobs));
        let logs = serde_json::to_string(
            &runs.iter().map(|(_, r)| &r.log).collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(
            baseline_logs, logs,
            "record_all with {jobs} jobs diverged from serial"
        );
        let cmp = serde_json::to_string(&compare_all(&opts(jobs), &runs)).unwrap();
        assert_eq!(
            baseline_cmp, cmp,
            "compare_all with {jobs} jobs diverged from serial"
        );
    }
}

#[test]
fn suite_costs_and_sampled_are_byte_identical_across_job_counts() {
    let runs = record_all(&opts(1));
    let logs: Vec<AccessLog> = runs.iter().map(|(_, r)| r.log.clone()).collect();
    for spec in [ModelSpec::Unified, ModelSpec::best_generational()] {
        let serial_costs = serde_json::to_string(&suite_costs(&logs, spec, 8, 1)).unwrap();
        let serial_sampled = serde_json::to_string(&suite_sampled(
            &logs,
            spec,
            SamplingParams::bounded(11),
            64,
            1,
        ))
        .unwrap();
        for jobs in [2, 8] {
            let costs = serde_json::to_string(&suite_costs(&logs, spec, 8, jobs)).unwrap();
            assert_eq!(
                serial_costs, costs,
                "merged cost report with {jobs} jobs diverged from serial ({spec:?})"
            );
            let sampled = serde_json::to_string(&suite_sampled(
                &logs,
                spec,
                SamplingParams::bounded(11),
                64,
                jobs,
            ))
            .unwrap();
            assert_eq!(
                serial_sampled, sampled,
                "merged sampled report with {jobs} jobs diverged from serial ({spec:?})"
            );
        }
    }
}

#[test]
fn suite_metrics_are_byte_identical_across_job_counts() {
    let runs = record_all(&opts(1));
    let logs: Vec<AccessLog> = runs.iter().map(|(_, r)| r.log.clone()).collect();
    for spec in [ModelSpec::Unified, ModelSpec::best_generational()] {
        let serial = serde_json::to_string(&suite_metrics(&logs, spec, 64, 1)).unwrap();
        for jobs in [2, 8] {
            let sharded = serde_json::to_string(&suite_metrics(&logs, spec, 64, jobs)).unwrap();
            assert_eq!(
                serial, sharded,
                "merged metrics with {jobs} jobs diverged from serial ({spec:?})"
            );
        }
    }
}
