//! Cross-crate integration below the sim layer: program construction,
//! frontend trace formation, relocation, and cache models wired together
//! by hand (no recorder).

use gencache_cache::{CodeCache, EvictionCause, PseudoCircularCache, TraceId};
use gencache_core::{
    CacheModel, Generation, GenerationalConfig, GenerationalModel, PromotionPolicy, Proportions,
};
use gencache_frontend::{relocate_trace, Engine, FrontendEvent, Trace};
use gencache_program::{Addr, ModuleBuilder, ModuleId, ModuleKind, ProgramImage, Region, Time};
use gencache_workloads::{TimedEvent, WorkloadEvent};

struct Fixture {
    image: ProgramImage,
    hot: Region,
    dll_region: Region,
}

fn fixture() -> Fixture {
    let mut exe = ModuleBuilder::new(
        ModuleId::new(0),
        "app.exe",
        ModuleKind::Executable,
        Addr::new(0x40_0000),
        64 * 1024,
    );
    let helper = exe.add_function(&[30, 30]).unwrap();
    let hot = exe
        .add_loop_calling(&[20, 24, 26], &[(1, &helper)])
        .unwrap();

    let mut dll = ModuleBuilder::new(
        ModuleId::new(1),
        "plugin.dll",
        ModuleKind::SharedLibrary,
        Addr::new(0x1000_0000),
        64 * 1024,
    );
    let dll_region = dll.add_loop(&[22, 26]).unwrap();

    let mut image = ProgramImage::new();
    image.map(exe.finish()).unwrap();
    image.map(dll.finish()).unwrap();
    Fixture {
        image,
        hot,
        dll_region,
    }
}

fn run_region(engine: &mut Engine, region: &Region, iters: u32, t0: u64) -> Vec<FrontendEvent> {
    let mut events = Vec::new();
    let mut t = t0;
    for _ in 0..iters {
        for &addr in region.path(0) {
            engine.on_event(
                TimedEvent::new(Time::from_micros(t), WorkloadEvent::Exec { addr }),
                &mut |e| events.push(e),
            );
            t += 1;
        }
    }
    events
}

fn created(events: &[FrontendEvent]) -> Vec<Trace> {
    events
        .iter()
        .filter_map(|e| match e {
            FrontendEvent::TraceCreated { trace } => Some(trace.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn frontend_traces_flow_into_generational_model() {
    let fx = fixture();
    let mut engine = Engine::with_threshold(fx.image.clone(), 10);
    let events = run_region(&mut engine, &fx.hot, 40, 0);
    let traces = created(&events);
    assert_eq!(traces.len(), 1);
    let hot = traces[0].record();

    let mut model = GenerationalModel::new(GenerationalConfig::new(
        2048,
        Proportions::even_thirds(),
        PromotionPolicy::OnHit { hits: 1 },
    ));
    // Feed every frontend event into the model the way the recorder does.
    for ev in &events {
        match ev {
            FrontendEvent::TraceCreated { trace } => {
                model.on_access(trace.record(), trace.created());
            }
            FrontendEvent::TraceAccess { id, time } => {
                assert_eq!(*id, hot.id);
                model.on_access(hot, *time);
            }
            FrontendEvent::TracesInvalidated { .. } => unreachable!("no unmaps here"),
        }
    }
    assert_eq!(model.generation_of(hot.id), Some(Generation::Nursery));
    assert_eq!(model.metrics().misses, 1, "only the cold miss");
}

#[test]
fn dll_unload_invalidates_and_model_drops_the_trace() {
    let fx = fixture();
    let mut engine = Engine::with_threshold(fx.image.clone(), 10);
    let events = run_region(&mut engine, &fx.dll_region, 30, 0);
    let traces = created(&events);
    assert_eq!(traces.len(), 1);
    let rec = traces[0].record();

    let mut model = GenerationalModel::new(GenerationalConfig::new(
        2048,
        Proportions::best_overall(),
        PromotionPolicy::OnHit { hits: 1 },
    ));
    model.on_access(rec, Time::ZERO);
    assert!(model.generation_of(rec.id).is_some());

    let mut invalidated = Vec::new();
    engine.on_event(
        TimedEvent::new(
            Time::from_micros(10_000),
            WorkloadEvent::Unload {
                module: ModuleId::new(1),
            },
        ),
        &mut |e| {
            if let FrontendEvent::TracesInvalidated { ids, .. } = e {
                invalidated.extend(ids);
            }
        },
    );
    assert_eq!(invalidated, vec![rec.id]);
    assert!(model.on_unmap(rec.id, Time::from_micros(10_000)));
    assert_eq!(model.generation_of(rec.id), None);
}

#[test]
fn promoted_trace_can_be_relocated_with_fixups() {
    let fx = fixture();
    let mut engine = Engine::with_threshold(fx.image.clone(), 10);
    let events = run_region(&mut engine, &fx.hot, 20, 0);
    let trace = &created(&events)[0];
    // Promotion moves the trace between caches; the relocation machinery
    // must succeed and scan every instruction of the trace body.
    let report = relocate_trace(&fx.image, trace, 0x0, 0x10_0000).unwrap();
    assert_eq!(report.bytes_copied, trace.size_bytes());
    assert!(report.instructions_scanned > 0);
    // After the DLL unmaps, the hot (exe) trace is still relocatable.
    let mut image = fx.image.clone();
    image.unmap(ModuleId::new(1)).unwrap();
    assert!(relocate_trace(&image, trace, 0x0, 0x10_0000).is_some());
}

#[test]
fn pinned_trace_survives_pseudo_circular_pressure_end_to_end() {
    let fx = fixture();
    let mut engine = Engine::with_threshold(fx.image.clone(), 10);
    let events = run_region(&mut engine, &fx.hot, 20, 0);
    let rec = created(&events)[0].record();

    let mut cache = PseudoCircularCache::new(rec.size_bytes as u64 + 64);
    cache.insert(rec, Time::ZERO).unwrap();
    cache.set_pinned(rec.id, true);
    // Hammer the cache with strangers; the pinned trace must survive.
    for i in 0..100u64 {
        let stranger =
            gencache_cache::TraceRecord::new(TraceId::new(1000 + i), 48, Addr::new(0x9000 + i));
        let _ = cache.insert(stranger, Time::from_micros(i));
    }
    assert!(cache.contains(rec.id));
    cache.set_pinned(rec.id, false);
    // Unpinned, the next inserts may finally displace it.
    for i in 0..100u64 {
        let stranger =
            gencache_cache::TraceRecord::new(TraceId::new(5000 + i), 48, Addr::new(0x19000 + i));
        let _ = cache.insert(stranger, Time::from_micros(1000 + i));
    }
    assert!(!cache.contains(rec.id));
}

#[test]
fn forced_deletion_statistics_propagate() {
    let fx = fixture();
    let mut engine = Engine::with_threshold(fx.image.clone(), 10);
    let events = run_region(&mut engine, &fx.dll_region, 30, 0);
    let rec = created(&events)[0].record();

    let mut cache = PseudoCircularCache::new(4096);
    cache.insert(rec, Time::ZERO).unwrap();
    let gone = cache.remove(rec.id, EvictionCause::Unmapped).unwrap();
    assert_eq!(gone.record, rec);
    assert_eq!(cache.stats().unmap_deletions, 1);
    assert_eq!(cache.stats().unmap_deleted_bytes, u64::from(rec.size_bytes));
    assert!(cache.stats().unmap_deletion_fraction() > 0.99);
}
