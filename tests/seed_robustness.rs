//! Seed robustness: the paper-claim shapes must not be artifacts of one
//! particular RNG seed. Re-running a benchmark with different seeds
//! changes every layout decision and schedule jitter; the qualitative
//! results (U-shaped lifetimes, generational win direction) must hold
//! anyway.

use gencache_sim::{compare_figure9, record};
use gencache_workloads::benchmark;

#[test]
fn word_wins_under_alternative_seeds() {
    let base = benchmark("word").expect("built-in").scaled_down(8);
    for salt in [0xA5A5u64, 0x1234_5678, 0xDEAD_BEEF] {
        let mut profile = base.clone();
        profile.seed ^= salt;
        let run = record(&profile).expect("plans");
        let c = compare_figure9(&run.log);
        let reduction = c.miss_rate_reduction(1);
        assert!(
            reduction > 0.05,
            "seed {salt:#x}: 45-10-45 should still win on word, got {reduction:+.3}"
        );
        assert!(
            c.overhead_ratio(1) < 1.0,
            "seed {salt:#x}: overhead ratio {:.3} should stay below 1",
            c.overhead_ratio(1)
        );
    }
}

#[test]
fn lifetimes_stay_u_shaped_under_alternative_seeds() {
    let base = benchmark("excel").expect("built-in").scaled_down(16);
    for salt in [1u64, 2, 3] {
        let mut profile = base.clone();
        profile.seed ^= salt << 32;
        let run = record(&profile).expect("plans");
        assert!(
            run.summary.lifetimes.is_u_shaped(),
            "seed salt {salt}: lifetimes lost the U shape: {:?}",
            run.summary.lifetimes.fractions()
        );
    }
}

#[test]
fn art_regresses_under_alternative_seeds() {
    let base = benchmark("art").expect("built-in");
    for salt in [7u64, 99] {
        let mut profile = base.clone();
        profile.seed ^= salt;
        let run = record(&profile).expect("plans");
        let c = compare_figure9(&run.log);
        assert!(
            c.miss_rate_reduction(1) <= 0.02,
            "seed salt {salt}: art should not benefit, got {:+.3}",
            c.miss_rate_reduction(1)
        );
    }
}
