//! End-to-end equivalence of the offline what-if simulator: a recorded
//! event stream, reconstructed and re-simulated, is indistinguishable
//! from re-recording.
//!
//! Three claims, each byte-for-byte:
//!
//! 1. simulating the stream under its *original* configuration
//!    reproduces the recorded replay exactly — miss rate, metrics
//!    report, Equation 3 cost ledger;
//! 2. a *counterfactual* pair of layouts (45-10-45\@hit1 vs
//!    30-20-50\@evict5) simulated from one stream matches a fresh
//!    two-config re-record of the same workload, at any `--jobs`;
//! 3. the full §6 proportions × promotion sweep run on the
//!    reconstructed log equals the sweep re-run on the original log —
//!    one export can stand in for `sweep_proportions` re-recording.
//!
//! Plus the oracle sanity bound: the Belady-style furthest-next-use
//! replayer never misses more than the unified baseline.

use gencache_bench::sample_interval;
use gencache_obs::{oracle_replay, reconstruct_trace, NextUseIndex};
use gencache_sim::{
    collect_costs, collect_events, collect_metrics, parse_spec, record, simulate_costs,
    simulate_grid, simulate_metrics, sweep_with_jobs, trace_to_log, AccessLog, GridOptions,
    ModelSpec, SimSpec,
};
use gencache_workloads::benchmark;

/// One recorded run of `word`, its exported stream reconstructed back
/// into a replayable log, plus the paper's capacity for it.
fn recorded_and_reconstructed() -> (AccessLog, AccessLog, u64) {
    let profile = benchmark("word").expect("word exists").scaled_down(32);
    let run = record(&profile).expect("calibrated profiles always plan");
    let (_, events) = collect_events(&run.log, ModelSpec::Unified);
    let trace = reconstruct_trace(&events).expect("stream inverts");
    let reconstructed = trace_to_log(
        &trace,
        profile.name.clone(),
        run.log.duration.as_micros(),
        run.log.peak_trace_bytes,
    );
    let capacity = (run.log.peak_trace_bytes / 2).max(1);
    (run.log, reconstructed, capacity)
}

fn model_spec(label: &str) -> (SimSpec, ModelSpec) {
    let spec = parse_spec(label).expect("valid spec label");
    let SimSpec::Model(model) = spec else {
        panic!("{label} is not a model spec");
    };
    (spec, model)
}

#[test]
fn simulation_reproduces_recording_and_counterfactuals_bitwise() {
    let (original, reconstructed, capacity) = recorded_and_reconstructed();
    let every = sample_interval(&original);
    assert_eq!(
        every,
        sample_interval(&reconstructed),
        "reconstruction must preserve the access count"
    );
    let phases = benchmark("word").expect("word exists").phases.max(1);

    // Original configuration and two counterfactual layouts, one of
    // which (30-20-50@evict5) no live export ever recorded.
    for label in ["unified", "gen-45-10-45@hit1", "30-20-50@evict5"] {
        let (spec, model) = model_spec(label);
        let (rec_result, rec_metrics) = collect_metrics(&original, model, every);
        let (sim_result, sim_metrics) = simulate_metrics(&reconstructed, spec, capacity, every);
        assert_eq!(sim_result.metrics, rec_result.metrics, "{label} model metrics");
        assert_eq!(sim_result.ledger, rec_result.ledger, "{label} Equation 3 ledger");
        assert_eq!(sim_metrics, rec_metrics, "{label} metrics report");
        assert_eq!(
            serde_json::to_string(&sim_metrics).unwrap(),
            serde_json::to_string(&rec_metrics).unwrap(),
            "{label} serialized metrics"
        );

        let (_, rec_costs) = collect_costs(&original, model, phases);
        let (_, sim_costs) = simulate_costs(&reconstructed, spec, capacity, phases);
        assert_eq!(sim_costs, rec_costs, "{label} cost report");
        assert_eq!(
            serde_json::to_string(&sim_costs).unwrap(),
            serde_json::to_string(&rec_costs).unwrap(),
            "{label} serialized costs"
        );
    }
}

#[test]
fn simulated_grid_is_jobs_invariant() {
    let (original, reconstructed, capacity) = recorded_and_reconstructed();
    let every = sample_interval(&reconstructed);
    let specs: Vec<SimSpec> = ["unified", "gen-45-10-45@hit1", "30-20-50@evict5", "lru"]
        .iter()
        .map(|l| parse_spec(l).expect("valid spec label"))
        .collect();
    let (_, events) = collect_events(&original, ModelSpec::Unified);
    let trace = reconstruct_trace(&events).expect("stream inverts");
    let index = NextUseIndex::build(&trace);
    let options = |jobs| GridOptions {
        phases: 12,
        sample_every: every,
        jobs,
        regret_index: Some(&index),
        windows: true,
        window_width: None,
        regret_top: None,
    };
    let serial = simulate_grid(&reconstructed, &specs, capacity, options(1));
    assert!(
        serial.iter().all(|s| s.regret.is_some()),
        "every grid cell gets a regret report when an index is supplied"
    );
    assert!(
        serial.iter().all(|s| s.windows.is_some()),
        "every grid cell gets a windowed report when requested"
    );
    for jobs in [2, 8] {
        let parallel = simulate_grid(&reconstructed, &specs, capacity, options(jobs));
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.label, b.label, "jobs={jobs}");
            assert_eq!(a.result.metrics, b.result.metrics, "{} jobs={jobs}", a.label);
            assert_eq!(a.metrics, b.metrics, "{} jobs={jobs}", a.label);
            assert_eq!(a.costs, b.costs, "{} jobs={jobs}", a.label);
            assert_eq!(
                serde_json::to_string(&a.regret).unwrap(),
                serde_json::to_string(&b.regret).unwrap(),
                "{} regret jobs={jobs}",
                a.label
            );
            assert_eq!(
                serde_json::to_string(&a.windows).unwrap(),
                serde_json::to_string(&b.windows).unwrap(),
                "{} windows jobs={jobs}",
                a.label
            );
        }
    }
}

#[test]
fn sweep_on_reconstructed_log_matches_rerecording() {
    let (original, reconstructed, _) = recorded_and_reconstructed();
    for jobs in [1, 4] {
        let fresh = sweep_with_jobs(&original, jobs);
        let simulated = sweep_with_jobs(&reconstructed, jobs);
        assert_eq!(
            serde_json::to_string(&fresh).unwrap(),
            serde_json::to_string(&simulated).unwrap(),
            "proportions sweep from one stream must equal re-recording (jobs={jobs})"
        );
    }
}

#[test]
fn oracle_lower_bounds_the_unified_baseline() {
    let (original, reconstructed, capacity) = recorded_and_reconstructed();
    let (_, events) = collect_events(&original, ModelSpec::Unified);
    let trace = reconstruct_trace(&events).expect("stream inverts");
    let oracle = oracle_replay(&trace, capacity);
    let every = sample_interval(&reconstructed);
    let (result, _) = simulate_metrics(
        &reconstructed,
        parse_spec("unified").unwrap(),
        capacity,
        every,
    );
    assert_eq!(oracle.accesses, result.metrics.accesses);
    assert!(
        oracle.misses <= result.metrics.misses,
        "oracle ({}) must not miss more than unified ({})",
        oracle.misses,
        result.metrics.misses
    );
}
