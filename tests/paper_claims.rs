//! The paper's headline claims, verified on (down-scaled) built-in
//! benchmarks. These are *shape* assertions — who wins and in which
//! direction — not absolute-number matches.

use gencache_sim::{compare_figure9, record};
use gencache_workloads::{benchmark, interactive, spec2000};

/// §5.1 / Figure 6: trace lifetimes are U-shaped — the short- and
/// long-lived extremes dominate the middle.
#[test]
fn lifetimes_are_u_shaped_on_a_large_app() {
    let profile = benchmark("excel").expect("built-in").scaled_down(16);
    let run = record(&profile).expect("plans");
    let h = run.summary.lifetimes;
    assert!(h.total() > 50, "need a meaningful trace population");
    assert!(
        h.is_u_shaped(),
        "expected U-shaped lifetimes, got {:?}",
        h.fractions()
    );
    assert!(h.short_lived_fraction() > 0.3);
    assert!(h.long_lived_fraction() > 0.1);
}

/// §6.1 / Figure 9: on a large interactive application, the generational
/// cache reduces the miss rate, and the 45-10-45 promote-on-first-hit
/// layout is the best of the three.
#[test]
fn generational_wins_on_word() {
    let profile = benchmark("word").expect("built-in").scaled_down(8);
    let run = record(&profile).expect("plans");
    let c = compare_figure9(&run.log);
    let reductions: Vec<f64> = (0..3).map(|i| c.miss_rate_reduction(i)).collect();
    assert!(
        reductions.iter().all(|&r| r > 0.05),
        "all layouts should win on word: {reductions:?}"
    );
    assert!(
        reductions[1] >= reductions[0] && reductions[1] >= reductions[2],
        "45-10-45 promote-on-hit(1) should be best: {reductions:?}"
    );
}

/// §6.2 / Figure 11: the miss-rate win translates into an instruction-
/// overhead reduction (ratio < 100%) despite the added promotion costs.
#[test]
fn overhead_ratio_below_one_on_word() {
    let profile = benchmark("word").expect("built-in").scaled_down(8);
    let run = record(&profile).expect("plans");
    let c = compare_figure9(&run.log);
    let ratio = c.overhead_ratio(1);
    assert!(
        ratio < 0.95,
        "45-10-45 should cut management overhead, got ratio {ratio:.3}"
    );
}

/// §6.1: `art` is the outlier — a small program whose working set cannot
/// fit once the cache is halved, where partitioning only hurts.
#[test]
fn art_is_the_negative_outlier() {
    let profile = benchmark("art").expect("built-in"); // already tiny
    let run = record(&profile).expect("plans");
    let c = compare_figure9(&run.log);
    assert!(
        c.miss_rate_reduction(1) < 0.0,
        "art should regress under generational management, got {:+.3}",
        c.miss_rate_reduction(1)
    );
    assert!(c.overhead_ratio(1) > 1.0);
}

/// §6.2: `applu` belongs to the trio whose promotion overhead outweighs
/// its miss-rate win (overhead ratio above 100%), and it prefers a larger
/// probation cache.
#[test]
fn applu_regresses_and_prefers_big_probation() {
    let profile = benchmark("applu").expect("built-in");
    let run = record(&profile).expect("plans");
    let c = compare_figure9(&run.log);
    assert!(
        c.overhead_ratio(1) > 1.0,
        "applu's 45-10-45 overhead should exceed unified, got {:.3}",
        c.overhead_ratio(1)
    );
    assert!(
        c.miss_rate_reduction(2) > c.miss_rate_reduction(1),
        "the 50% probation layout should serve applu better"
    );
}

/// §3.1 / Figure 1: interactive applications need code caches an order of
/// magnitude larger than SPEC2000 (the paper reports a twenty-fold mean
/// increase). Checked on the profile definitions (full scale) without
/// running everything.
#[test]
fn interactive_caches_dwarf_spec() {
    let spec_mean = spec2000()
        .iter()
        .map(|p| p.footprint_bytes as f64)
        .sum::<f64>()
        / 26.0;
    let inter_mean = interactive()
        .iter()
        .map(|p| p.footprint_bytes as f64)
        .sum::<f64>()
        / 12.0;
    let factor = inter_mean / spec_mean;
    assert!(
        factor > 10.0,
        "interactive/SPEC footprint ratio only {factor:.1}"
    );
}

/// §3.2 / Figure 2: code expansion is substantial and similar across
/// suites — the cache size is driven by application size, not suite.
#[test]
fn code_expansion_is_substantial_for_both_suites() {
    let spec = record(&benchmark("gzip").expect("built-in")).expect("plans");
    let inter = record(&benchmark("winzip").expect("built-in").scaled_down(8)).expect("plans");
    assert!(spec.summary.code_expansion_pct > 200.0);
    assert!(inter.summary.code_expansion_pct > 200.0);
    let ratio = spec.summary.code_expansion_pct / inter.summary.code_expansion_pct;
    assert!(
        (0.5..2.0).contains(&ratio),
        "expansion should be comparable across suites, got {ratio:.2}"
    );
}

/// §3.4 / Figure 4: a meaningful share of an interactive application's
/// traces must be deleted because of unmapped DLLs; SPEC never unmaps.
#[test]
fn unmapped_memory_affects_interactive_only() {
    let inter = record(&benchmark("acroread").expect("built-in").scaled_down(16)).expect("plans");
    assert!(
        inter.summary.unmapped_frac > 0.05,
        "acroread should lose >5% of trace bytes to unmaps, got {:.3}",
        inter.summary.unmapped_frac
    );
    let spec = record(&benchmark("mcf").expect("built-in")).expect("plans");
    assert_eq!(spec.summary.unmapped_frac, 0.0);
}
