//! Suite-level reconciliation of the cost-attribution pipeline: the
//! Figure 11 comparison and the `CostObserver` price the *same* run
//! through the *same* Equation 3 ledgers, so their suite totals must be
//! bitwise equal — and the bounded-memory sampling observer must keep
//! every counter exact while its sampled distributions stay faithful.

use gencache_core::overhead_ratio;
use gencache_bench::{record_all, HarnessOptions};
use gencache_obs::{CostLedger, Log2Histogram, SampledReport, SamplingParams};
use gencache_sim::{
    collect_metrics, collect_sampled, compare_figure9, suite_costs, suite_sampled, AccessLog,
    ModelSpec,
};
use gencache_workloads::Suite;

fn opts() -> HarnessOptions {
    HarnessOptions {
        scale: 64,
        suite: Some(Suite::Interactive),
        jobs: Some(2),
        ..HarnessOptions::default()
    }
}

fn suite_logs() -> Vec<AccessLog> {
    record_all(&opts())
        .into_iter()
        .map(|(_, r)| r.log)
        .collect()
}

/// The `CostObserver` totals, folded across the suite, equal the
/// ledgers the Figure 11 comparison computes — bitwise, because both
/// charge the same Table 2 formulas in the same replay order — and so
/// the Equation 3 overhead ratio is identical from either side.
#[test]
fn suite_cost_totals_reconcile_with_figure11_ledgers() {
    let logs = suite_logs();
    let mut unified = CostLedger::new();
    let mut generational = CostLedger::new();
    for log in &logs {
        let comparison = compare_figure9(log);
        unified.merge(&comparison.unified.ledger);
        // Index 1 is 45-10-45 promote-on-first-hit — the same layout
        // `ModelSpec::best_generational()` instruments.
        generational.merge(&comparison.generational[1].ledger);
    }

    let unified_costs = suite_costs(&logs, ModelSpec::Unified, 8, 2);
    let gen_costs = suite_costs(&logs, ModelSpec::best_generational(), 8, 2);
    assert_eq!(unified_costs.total, unified, "unified suite ledger diverged");
    assert_eq!(gen_costs.total, generational, "generational suite ledger diverged");
    assert_eq!(
        overhead_ratio(&gen_costs.total, &unified_costs.total),
        overhead_ratio(&generational, &unified),
    );
    assert!(unified_costs.total.total() > 0.0, "suite priced no events");
}

/// Log2-bucket tolerance: `value` must land within `buckets`
/// power-of-two buckets of the exact quantile. A histogram quantile is
/// a bucket *upper bound*, so one bucket of slack is inherent even for
/// a perfect sample.
fn assert_within_buckets(name: &str, q: f64, exact: u64, sampled: u64, buckets: u32) {
    let e = exact.max(1) as f64;
    let s = sampled.max(1) as f64;
    let ratio = if e > s { e / s } else { s / e };
    assert!(
        ratio <= f64::from(1u32 << buckets),
        "{name} q{q}: sampled {s} vs exact {e} (ratio {ratio:.1})"
    );
}

/// The *median* of a strided histogram sample is stable. Tail
/// quantiles are not checked here — systematic striding aliases
/// against periodic workloads; the uniform reservoir covers the tail.
fn assert_median_close(name: &str, exact: &Log2Histogram, sampled: &Log2Histogram) {
    if exact.total() < 64 || sampled.total() < 48 {
        return; // too few samples for a stable quantile
    }
    assert_within_buckets(name, 0.5, exact.quantile(0.5), sampled.quantile(0.5), 2);
}

/// On the recorded Figure 9 workloads, aggressive sampling keeps every
/// counter exact (only distributions are thinned) and the sampled
/// reuse/lifetime quantiles stay within the stated tolerance.
#[test]
fn sampling_keeps_counters_exact_and_quantiles_faithful() {
    let logs = suite_logs();
    let spec = ModelSpec::best_generational();
    for log in &logs {
        let (_, exact) = collect_metrics(log, spec, 0);
        let (_, sampled) = collect_sampled(log, spec, SamplingParams::bounded(42), 0);
        let m = &sampled.metrics;
        assert_eq!(m.accesses, exact.accesses, "{}", log.benchmark);
        assert_eq!(m.hits, exact.hits, "{}", log.benchmark);
        assert_eq!(m.misses, exact.misses, "{}", log.benchmark);
        let mut exact_reuse = Log2Histogram::new();
        for (er, sr) in exact.regions.iter().zip(&m.regions) {
            assert_eq!(sr.inserts, er.inserts);
            assert_eq!(sr.insert_bytes, er.insert_bytes);
            assert_eq!(sr.capacity_evictions, er.capacity_evictions);
            assert_eq!(sr.promotions_in, er.promotions_in);
            assert_eq!(sr.promotions_out, er.promotions_out);
            assert_eq!(sr.peak_resident_bytes, er.peak_resident_bytes);
            let name = format!("{} reuse", log.benchmark);
            assert_median_close(&name, &er.reuse_us, &sr.reuse_us);
            let name = format!("{} lifetime", log.benchmark);
            assert_median_close(&name, &er.lifetime_us, &sr.lifetime_us);
            exact_reuse.merge(&er.reuse_us);
        }
        // The uniform reservoir carries the full reuse distribution,
        // tail included: its quantiles track the exact histogram's.
        if exact_reuse.total() >= 256 {
            let name = format!("{} reservoir", log.benchmark);
            for (q, buckets) in [(0.5, 2), (0.9, 4)] {
                let s = sampled.reuse_sample.quantile(q).unwrap();
                assert_within_buckets(&name, q, exact_reuse.quantile(q), s, buckets);
            }
        }
    }
}

/// The suite-level report types survive a JSON round-trip intact — the
/// contract the exported documents and the `delta` tool rely on.
#[test]
fn suite_reports_roundtrip_through_json() {
    let logs = suite_logs();
    let spec = ModelSpec::best_generational();
    let costs = suite_costs(&logs, spec, 6, 1);
    let json = serde_json::to_string(&costs).unwrap();
    assert_eq!(serde_json::from_str::<gencache_obs::CostReport>(&json).unwrap(), costs);

    let sampled = suite_sampled(&logs, spec, SamplingParams::bounded(7), 64, 1);
    let json = serde_json::to_string(&sampled).unwrap();
    assert_eq!(serde_json::from_str::<SampledReport>(&json).unwrap(), sampled);
}
