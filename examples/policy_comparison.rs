//! Local replacement policies head to head on one benchmark.
//!
//! Replays a recorded `crafty` log into a unified cache under each local
//! policy — pseudo-circular (the paper's), LRU, and Dynamo-style
//! flush-on-full — plus the generational hierarchy, and reports miss
//! rates, management-instruction overhead, and fragmentation.
//!
//! Run with:
//! `cargo run --release --example policy_comparison -p gencache-sim [scale]`

use gencache_cache::{CodeCache, FlushCache, LruCache, PseudoCircularCache};
use gencache_core::{
    CacheModel, GenerationalConfig, GenerationalModel, PromotionPolicy, Proportions, UnifiedModel,
};
use gencache_sim::report::TextTable;
use gencache_sim::{record, replay_into};
use gencache_workloads::benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(4);
    let profile = benchmark("crafty")
        .expect("built-in benchmark")
        .scaled_down(scale);
    println!("recording `crafty` at 1/{scale} scale...");
    let run = record(&profile)?;
    let capacity = (run.log.peak_trace_bytes / 2).max(1);
    println!(
        "replaying {} accesses into {} byte caches\n",
        run.log.access_count(),
        capacity
    );

    let mut table = TextTable::new(["policy", "miss rate", "mgmt instructions", "fragmentation"]);

    let policies: Vec<(&str, Box<dyn CodeCache>)> = vec![
        (
            "pseudo-circular",
            Box::new(PseudoCircularCache::new(capacity)),
        ),
        ("LRU first-fit", Box::new(LruCache::new(capacity))),
        ("flush-on-full", Box::new(FlushCache::new(capacity))),
    ];
    for (name, cache) in policies {
        let mut model = UnifiedModel::with_cache(name, cache);
        replay_into(&run.log, &mut model);
        table.row([
            name.to_owned(),
            format!("{:.2}%", model.metrics().miss_rate() * 100.0),
            format!("{:.2e}", model.ledger().total()),
            format!("{:.2}", model.cache().fragmentation().fragmentation_ratio()),
        ]);
    }

    let mut generational = GenerationalModel::new(GenerationalConfig::new(
        capacity,
        Proportions::best_overall(),
        PromotionPolicy::OnHit { hits: 1 },
    ));
    replay_into(&run.log, &mut generational);
    table.row([
        generational.name(),
        format!("{:.2}%", generational.metrics().miss_rate() * 100.0),
        format!("{:.2e}", generational.ledger().total()),
        "-".to_owned(),
    ]);

    print!("{}", table.render());
    Ok(())
}
