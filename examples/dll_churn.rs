//! Unmapped memory in action (Section 3.4).
//!
//! Builds a custom workload whose shared libraries load and unload
//! aggressively, then shows the chain of consequences: the frontend
//! invalidates stale traces the instant a module unmaps, forced deletions
//! punch holes in the bounded cache, and the pseudo-circular policy
//! absorbs the fragmentation without a defragmentation pass.
//!
//! Run with: `cargo run --release --example dll_churn -p gencache-sim`

use gencache_core::{CacheModel, UnifiedModel};
use gencache_sim::report::fmt_bytes;
use gencache_sim::{record, replay_into, LogRecord};
use gencache_workloads::{Suite, WorkloadProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Every DLL is unmapped when its phase ends.
    let profile = WorkloadProfile::builder("churner", Suite::Interactive)
        .description("synthetic DLL-churn stress")
        .duration_secs(30.0)
        .footprint_kb(512)
        .phases(8)
        .lifetime_mix(0.15, 0.05)
        .dlls(12, 1.0)
        .hot_revisits(5)
        .build();

    println!(
        "recording a DLL-churn workload ({} DLLs, all unmapped mid-run)...",
        profile.dll_count
    );
    let run = record(&profile)?;
    let s = &run.summary;
    println!("  traces created      : {}", s.traces_created);
    println!(
        "  trace bytes created : {}",
        fmt_bytes(run.frontend.trace_bytes_created)
    );
    println!(
        "  invalidated by unmap: {} traces, {} ({:.1}% of bytes)",
        run.frontend.traces_invalidated,
        fmt_bytes(run.frontend.trace_bytes_invalidated),
        s.unmapped_frac * 100.0
    );

    let invalidations = run
        .log
        .records
        .iter()
        .filter(|r| matches!(r, LogRecord::Invalidate { .. }))
        .count();
    println!("  forced-deletion log records: {invalidations}");

    // Replay into a bounded cache and observe the holes.
    let capacity = (run.log.peak_trace_bytes / 2).max(1);
    let mut model = UnifiedModel::new(capacity);
    replay_into(&run.log, &mut model);
    let frag = model.cache().fragmentation();
    println!("\nbounded pseudo-circular cache ({}):", fmt_bytes(capacity));
    println!(
        "  miss rate           : {:.2}%",
        model.metrics().miss_rate() * 100.0
    );
    println!(
        "  unmap deletions     : {}",
        model.metrics().unmap_deletions
    );
    println!(
        "  free space          : {} in {} gaps (largest {})",
        fmt_bytes(frag.free_bytes),
        frag.gap_count,
        fmt_bytes(frag.largest_gap)
    );
    println!(
        "  fragmentation ratio : {:.2} (0 = one contiguous gap)",
        frag.fragmentation_ratio()
    );
    Ok(())
}
