//! Quickstart: the whole pipeline on a toy program, end to end.
//!
//! Builds a tiny guest program by hand, runs it through the DBT frontend
//! to form traces, and watches one hot trace travel the generational
//! hierarchy: nursery → probation → persistent.
//!
//! Run with: `cargo run --example quickstart -p gencache-sim`

use gencache_cache::TraceId;
use gencache_core::{
    CacheModel, Generation, GenerationalConfig, GenerationalModel, PromotionPolicy, Proportions,
};
use gencache_frontend::{Engine, FrontendEvent};
use gencache_program::{Addr, ModuleBuilder, ModuleId, ModuleKind, ProgramImage, Time};
use gencache_workloads::{TimedEvent, WorkloadEvent};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Lay out a guest program: one hot loop calling a helper. -----
    let mut builder = ModuleBuilder::new(
        ModuleId::new(0),
        "toy.exe",
        ModuleKind::Executable,
        Addr::new(0x40_0000),
        64 * 1024,
    );
    let helper = builder.add_function(&[40, 40])?;
    let hot_loop = builder.add_loop_calling(&[24, 32, 30], &[(0, &helper)])?;
    let cold_loop = builder.add_loop(&[26, 26])?;
    let mut image = ProgramImage::new();
    image.map(builder.finish())?;
    println!(
        "program: {} bytes of code in 1 module",
        image.total_code_bytes()
    );

    // --- 2. Execute it under the DBT frontend (threshold 50). -----------
    let mut engine = Engine::new(image.clone());
    let mut created = Vec::new();
    let mut accesses = 0u64;
    let mut t = 0u64;
    let mut run = |engine: &mut Engine,
                   path: &[Addr],
                   iters: u32,
                   created: &mut Vec<gencache_frontend::Trace>,
                   accesses: &mut u64| {
        for _ in 0..iters {
            for &addr in path {
                engine.on_event(
                    TimedEvent::new(Time::from_micros(t), WorkloadEvent::Exec { addr }),
                    &mut |fe| match fe {
                        FrontendEvent::TraceCreated { trace } => created.push(trace),
                        FrontendEvent::TraceAccess { .. } => *accesses += 1,
                        FrontendEvent::TracesInvalidated { .. } => {}
                    },
                );
                t += 1;
            }
        }
    };
    run(
        &mut engine,
        hot_loop.path(0),
        200,
        &mut created,
        &mut accesses,
    );
    run(
        &mut engine,
        cold_loop.path(0),
        60,
        &mut created,
        &mut accesses,
    );

    println!(
        "frontend: {} traces created, {} trace-cache accesses",
        created.len(),
        accesses
    );
    for trace in &created {
        println!(
            "  {} at {}: {} blocks, {} bytes (helper inlined by NET)",
            trace.id(),
            trace.head(),
            trace.body().len(),
            trace.size_bytes()
        );
    }

    // --- 3. Drive the generational cache hierarchy directly. ------------
    let config = GenerationalConfig::new(
        4096, // deliberately tiny so evictions happen quickly
        Proportions::best_overall(),
        PromotionPolicy::OnHit { hits: 1 },
    );
    println!("\ngenerational hierarchy: {config}");
    let mut model = GenerationalModel::new(config);
    let hot = created[0].record();

    model.on_access(hot, Time::from_micros(1));
    println!("after first execution : {:?}", model.generation_of(hot.id));

    // Fill the nursery with strangers until the hot trace is evicted.
    let mut id = 100u64;
    while model.generation_of(hot.id) == Some(Generation::Nursery) {
        let stranger = gencache_cache::TraceRecord::new(TraceId::new(id), 120, Addr::new(id));
        model.on_access(stranger, Time::from_micros(10 + id));
        id += 1;
    }
    println!("after nursery churn   : {:?}", model.generation_of(hot.id));

    // One more execution promotes it out of probation.
    model.on_access(hot, Time::from_micros(10_000));
    println!("after one more use    : {:?}", model.generation_of(hot.id));
    assert_eq!(model.generation_of(hot.id), Some(Generation::Persistent));

    println!(
        "\ncosts so far: {:.0} instructions of cache management ({} misses, {} promotions)",
        model.ledger().total(),
        model.metrics().misses,
        model.metrics().promotions_to_probation + model.metrics().promotions_to_persistent,
    );
    Ok(())
}
