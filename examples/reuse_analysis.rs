//! Why generational caches win: the reuse-distance view.
//!
//! Computes the byte-weighted stack-distance profile of a recorded
//! benchmark and renders the cache-occupancy timeline of both cache
//! organizations. The distance distribution is bimodal — immediate
//! nursery-style reuse plus a far spike at the long-lived working set —
//! which is exactly the structure a nursery/persistent split exploits.
//!
//! Run with:
//! `cargo run --release --example reuse_analysis -p gencache-sim [benchmark] [scale]`

use gencache_core::{GenerationalConfig, GenerationalModel, UnifiedModel};
use gencache_sim::report::{fmt_bytes, sparkline};
use gencache_sim::{occupancy_series, record, reuse_profile};
use gencache_workloads::benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "excel".into());
    let scale: u64 = std::env::args()
        .nth(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(8);
    let profile = benchmark(&name)
        .ok_or_else(|| format!("unknown benchmark {name:?}"))?
        .scaled_down(scale);

    println!("recording `{name}` at 1/{scale} scale...");
    let run = record(&profile)?;
    let peak = run.log.peak_trace_bytes;

    let reuse = reuse_profile(&run.log);
    println!(
        "\nbyte-weighted reuse distances ({} accesses):",
        reuse.total_accesses()
    );
    for pct in [10u8, 50, 90, 99] {
        if let Some(d) = reuse.percentile(pct) {
            println!("  p{pct:<2} {:>10}", fmt_bytes(d));
        }
    }
    println!("\nanalytic LRU miss-rate curve:");
    for frac in [10u64, 25, 50, 75, 100] {
        let capacity = peak * frac / 100;
        println!(
            "  {:>3}% of peak ({:>9}) -> {:>6.2}% misses",
            frac,
            fmt_bytes(capacity),
            reuse.miss_rate_at(capacity) * 100.0
        );
    }

    // Occupancy timelines at the paper's operating point.
    let capacity = (peak / 2).max(1);
    let mut unified = UnifiedModel::new(capacity);
    let unified_series = occupancy_series(&run.log, &mut unified, 60);
    let mut generational = GenerationalModel::new(GenerationalConfig::figure9_configs(capacity)[1]);
    let gen_series = occupancy_series(&run.log, &mut generational, 60);

    println!(
        "\ncache occupancy over the run (0.5 x maxCache = {}):",
        fmt_bytes(capacity)
    );
    println!("  unified      {}", sparkline(&unified_series));
    println!("  generational {}", sparkline(&gen_series));
    Ok(())
}
