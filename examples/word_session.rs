//! The paper's motivating scenario: a large interactive application.
//!
//! Records a (down-scaled) Microsoft-Word-like session — tens of modules,
//! DLL churn, phase-structured user activity — and compares a unified
//! trace cache at half the unbounded peak against the generational
//! layouts of Figure 9.
//!
//! Run with: `cargo run --release --example word_session -p gencache-sim`
//! (add an integer argument to change the down-scale factor, default 16).

use gencache_sim::report::{fmt_bytes, fmt_pct};
use gencache_sim::{compare_figure9, record};
use gencache_workloads::benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(16);
    let profile = benchmark("word")
        .expect("word is a built-in benchmark")
        .scaled_down(scale);
    println!(
        "recording `word` at 1/{scale} scale ({} footprint, {} DLLs, {} phases)...",
        fmt_bytes(profile.footprint_bytes),
        profile.dll_count,
        profile.phases
    );

    let run = record(&profile)?;
    let s = &run.summary;
    println!("\ncharacterization (Figures 1-4, 6):");
    println!("  max unbounded cache : {}", fmt_bytes(s.max_cache_bytes));
    println!("  code expansion      : {:.0}%", s.code_expansion_pct);
    println!("  insertion rate      : {:.1} KB/s", s.insertion_rate_kbps);
    println!(
        "  unmapped deletions  : {:.1}% of trace bytes",
        s.unmapped_frac * 100.0
    );
    println!("  traces created      : {}", s.traces_created);
    let f = s.lifetimes.fractions();
    println!(
        "  lifetimes           : <20% {:.0}% | mid {:.0}% | >80% {:.0}%  (U-shaped: {})",
        f[0] * 100.0,
        (f[1] + f[2] + f[3]) * 100.0,
        f[4] * 100.0,
        s.lifetimes.is_u_shaped()
    );

    println!("\nreplaying into bounded caches at 0.5 x maxCache (Figures 9-11):");
    let c = compare_figure9(&run.log);
    println!(
        "  unified baseline    : {:.2}% miss rate ({} misses)",
        c.unified.miss_rate() * 100.0,
        c.unified.metrics.misses
    );
    for i in 0..c.generational.len() {
        println!(
            "  {:<42}: miss reduction {}, overhead ratio {:.1}%",
            c.generational[i].model,
            fmt_pct(c.miss_rate_reduction(i)),
            c.overhead_ratio(i) * 100.0
        );
    }
    Ok(())
}
