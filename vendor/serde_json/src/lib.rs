//! Offline stand-in for `serde_json`: renders the simplified serde
//! [`Value`] tree as JSON text and parses it back.
//!
//! Output is deterministic — object fields serialize in declaration
//! order, floats use Rust's shortest round-trip formatting — which the
//! parallel-engine tests rely on for byte-identical comparisons.

use std::fmt;
use std::io::{Read, Write};

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization / deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(e.to_string())
    }
}

/// A specialized `Result` for JSON conversions.
pub type Result<T> = std::result::Result<T, Error>;

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.peek() {
            Some(got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            got => Err(Error::new(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos,
                got.map(|g| g as char)
            ))),
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("non-ascii \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.expect(b'{')?;
                let mut pairs = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error::new("expected ',' or '}' in object")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected byte {other:?} at {}",
                self.pos
            ))),
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parses a JSON string into the raw [`Value`] tree.
pub fn value_from_str(text: &str) -> Result<Value> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing bytes after JSON value at {}",
            parser.pos
        )));
    }
    Ok(value)
}

/// Deserializes `T` from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    Ok(T::from_value(&value_from_str(text)?)?)
}

/// Deserializes `T` from a reader of JSON text.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a\"b\\c\nd".into())),
            ("big".into(), Value::UInt(u64::MAX)),
            ("neg".into(), Value::Int(-42)),
            ("pi".into(), Value::Float(std::f64::consts::PI)),
            (
                "arr".into(),
                Value::Array(vec![Value::Null, Value::Bool(true), Value::UInt(0)]),
            ),
            ("empty_obj".into(), Value::Object(vec![])),
            ("empty_arr".into(), Value::Array(vec![])),
        ]);
        let text = to_string(&ValueWrap(&v)).unwrap();
        let back = value_from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    /// Serialize helper so the test can feed a raw Value through the
    /// public API.
    struct ValueWrap<'a>(&'a Value);

    impl serde::Serialize for ValueWrap<'_> {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn derived_types_roundtrip_through_text() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Rec {
            id: u64,
            score: f64,
            tags: Vec<String>,
            parent: Option<u32>,
        }

        let rec = Rec {
            id: 1 << 60,
            score: 0.1 + 0.2,
            tags: vec!["α".into(), "two words".into()],
            parent: None,
        };
        let text = to_string(&rec).unwrap();
        let back: Rec = from_str(&text).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn whitespace_tolerated_on_parse() {
        let text = " {\n  \"a\" : [ 1 , 2 ] ,\n \"b\" : null }\n";
        let v = value_from_str(text).unwrap();
        assert_eq!(
            v,
            Value::Object(vec![
                ("a".into(), Value::Array(vec![Value::UInt(1), Value::UInt(2)])),
                ("b".into(), Value::Null),
            ])
        );
    }

    #[test]
    fn unicode_survives() {
        let original = "héllo → 世界";
        let text = to_string(original).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn errors_are_reported() {
        assert!(value_from_str("{broken").is_err());
        assert!(value_from_str("[1, 2").is_err());
        assert!(value_from_str("12 34").is_err());
        assert!(from_str::<u64>("\"nope\"").is_err());
    }
}
