//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! serde stand-in.
//!
//! The registry is unreachable in this build environment, so these
//! derives are written against `proc_macro` alone (no `syn`/`quote`).
//! They hand-parse the item definition out of the token stream —
//! supporting exactly the shapes the workspace uses: non-generic named
//! structs, tuple structs, and enums with unit / named-field / tuple
//! variants — and emit impls of the simplified value-tree traits in the
//! vendored `serde` crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of item we are deriving for.
enum ItemKind {
    /// `struct S { a: T, b: U }`
    NamedStruct(Vec<String>),
    /// `struct S(T, U);` — arity recorded.
    TupleStruct(usize),
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Item {
    name: String,
    kind: ItemKind,
}

/// Skips attributes (`#[...]`, including expanded doc comments) and
/// visibility (`pub`, `pub(...)`) at the head of `tokens`.
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("malformed attribute after '#': {other:?}"),
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Splits the tokens of a brace/paren group at top-level commas,
/// treating `<...>` angle nesting as opaque so generic argument commas
/// (e.g. `HashMap<K, V>`) do not split a field.
fn split_top_level_commas(tokens: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in tokens {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extracts the field name from one named-field chunk
/// (`[attrs] [vis] name : Type`).
fn field_name(chunk: Vec<TokenTree>) -> String {
    let mut it = chunk.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected field name, found {other:?}"),
    }
}

fn parse_variants(tokens: TokenStream) -> Vec<Variant> {
    split_top_level_commas(tokens)
        .into_iter()
        .map(|chunk| {
            let mut it = chunk.into_iter().peekable();
            skip_attrs_and_vis(&mut it);
            let name = match it.next() {
                Some(TokenTree::Ident(i)) => i.to_string(),
                other => panic!("expected variant name, found {other:?}"),
            };
            let kind = match it.next() {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(
                        split_top_level_commas(g.stream())
                            .into_iter()
                            .map(field_name)
                            .collect(),
                    )
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(split_top_level_commas(g.stream()).len())
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantKind::Unit,
                other => panic!("unsupported variant shape: {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let keyword = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("the offline serde derive does not support generic types ({name})");
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(
                    split_top_level_commas(g.stream())
                        .into_iter()
                        .map(field_name)
                        .collect(),
                )
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(split_top_level_commas(g.stream()).len())
            }
            other => panic!("unsupported struct shape for {name}: {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body for {name}, found {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantKind::Named(fields) => {
                            let pats = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {pats} }} => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Object(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(x0)".to_string()
                            } else {
                                let entries: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "::serde::Value::Array(::std::vec![{}])",
                                    entries.join(", ")
                                )
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), {inner})]),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::obj_field(v, \"{name}\", \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        ItemKind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        ItemKind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(\
                         ::serde::arr_elem(v, \"{name}\", {i}, {n})?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        ItemKind::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push(format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                    )),
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     ::serde::obj_field(inner, \"{name}::{vname}\", \"{f}\")?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                            inits.join(", ")
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = if *n == 1 {
                            vec!["::serde::Deserialize::from_value(inner)?".to_string()]
                        } else {
                            (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(\
                                         ::serde::arr_elem(inner, \"{name}::{vname}\", {i}, {n})?)?"
                                    )
                                })
                                .collect()
                        };
                        tagged_arms.push(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}({})),",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{ \
                   ::serde::Value::Str(s) => match s.as_str() {{ \
                     {} \
                     other => ::std::result::Result::Err(::serde::DeError::new(\
                       ::std::format!(\"unknown unit variant {{other}} for {name}\"))), \
                   }}, \
                   ::serde::Value::Object(pairs) if pairs.len() == 1 => {{ \
                     let (tag, inner) = &pairs[0]; \
                     match tag.as_str() {{ \
                       {} \
                       other => ::std::result::Result::Err(::serde::DeError::new(\
                         ::std::format!(\"unknown variant {{other}} for {name}\"))), \
                     }} \
                   }}, \
                   _ => ::std::result::Result::Err(::serde::DeError::new(\
                     ::std::format!(\"expected {name} variant, got {{v:?}}\"))), \
                 }}",
                unit_arms.join(" "),
                tagged_arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
}

/// Derives the simplified `serde::Serialize` (value-tree construction).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the simplified `serde::Deserialize` (value-tree readback).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}
