//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the API surface the workspace uses — seeded
//! [`rngs::StdRng`], [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`],
//! and [`seq::SliceRandom::shuffle`] — on top of a SplitMix64-seeded
//! xoshiro256** generator. Streams are deterministic for a given seed (the
//! property every gencache recording relies on) but intentionally differ
//! from upstream `rand`'s ChaCha-based `StdRng`.

/// Seeding support: construct a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from the full value domain
/// (the `rng.gen()` entry point).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `high > low`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(high > low, "gen_range requires a non-empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                // Modulo sampling: the tiny bias is irrelevant for
                // workload synthesis and keeps the stream cheap.
                low.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A half-open or inclusive range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + WrappingStep> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = (*self.start(), *self.end());
        if low == high {
            return low;
        }
        T::sample_range(rng, low, high.wrapping_next())
    }
}

/// Helper for turning an inclusive upper bound into an exclusive one.
pub trait WrappingStep: PartialEq {
    /// `self + 1` with wraparound (only reached when `self < MAX`).
    fn wrapping_next(self) -> Self;
}

macro_rules! impl_wrapping_step {
    ($($t:ty),*) => {$(
        impl WrappingStep for $t {
            fn wrapping_next(self) -> Self { self.wrapping_add(1) }
        }
    )*};
}
impl_wrapping_step!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw over `T`'s full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a (non-empty) range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64 —
    /// the stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// The subset of `rand::seq::SliceRandom` gencache uses.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(30..=110);
            assert!((30..=110).contains(&v));
            let w: usize = rng.gen_range(0..5);
            assert!(w < 5);
        }
        assert_eq!(rng.gen_range(3..=3u32), 3);
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
