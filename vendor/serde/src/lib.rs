//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate provides a
//! simplified serialization framework with the same *surface* the
//! workspace uses — `use serde::{Serialize, Deserialize}` plus the
//! derives — but a much smaller contract: types convert to and from an
//! owned JSON-like [`Value`] tree. The vendored `serde_json` renders that
//! tree as real JSON text.
//!
//! Not supported (and not used anywhere in the workspace): `#[serde(...)]`
//! attributes, generic types, zero-copy deserialization, non-self-describing
//! formats.

// Lets the `::serde::` paths emitted by the derive macro resolve when the
// derives are used inside this crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// An owned JSON-like value tree: the interchange format between
/// [`Serialize`]/[`Deserialize`] impls and the `serde_json` text layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers (kept separate so `u64::MAX` round-trips).
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, in insertion order (field order is deterministic, so
    /// serialized output is byte-stable).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Deserialization failure: a human-readable path/description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given description.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a required field of an object value (derive-generated code).
pub fn obj_field<'v>(v: &'v Value, ty: &str, field: &str) -> Result<&'v Value, DeError> {
    let pairs = v
        .as_object()
        .ok_or_else(|| DeError::new(format!("expected object for {ty}, got {v:?}")))?;
    pairs
        .iter()
        .find(|(k, _)| k == field)
        .map(|(_, val)| val)
        .ok_or_else(|| DeError::new(format!("missing field {ty}.{field}")))
}

/// Looks up a required element of an array value (derive-generated code).
pub fn arr_elem<'v>(v: &'v Value, ty: &str, index: usize, len: usize) -> Result<&'v Value, DeError> {
    let items = v
        .as_array()
        .ok_or_else(|| DeError::new(format!("expected {len}-element array for {ty}")))?;
    if items.len() != len {
        return Err(DeError::new(format!(
            "expected {len} elements for {ty}, got {}",
            items.len()
        )));
    }
    Ok(&items[index])
}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new(format!("expected bool, got {v:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!(
                            "{n} out of range for {}", stringify!($t)))),
                    Value::Int(n) => u64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| DeError::new(format!(
                            "{n} out of range for {}", stringify!($t)))),
                    _ => Err(DeError::new(format!(
                        "expected {}, got {v:?}", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        u64::from_value(v).and_then(|n| {
            usize::try_from(n).map_err(|_| DeError::new(format!("{n} out of range for usize")))
        })
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n).map_err(|_| {
                        DeError::new(format!("{n} out of range for {}", stringify!($t)))
                    })?,
                    _ => {
                        return Err(DeError::new(format!(
                            "expected {}, got {v:?}", stringify!($t))))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    DeError::new(format!("{wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::new(format!("expected f64, got {v:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new(format!("expected string, got {v:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(Deserialize::from_value).collect(),
            _ => Err(DeError::new(format!("expected array, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected {N}-element array, got {got}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::new(format!("expected 2-tuple, got {v:?}")))?;
        if items.len() != 2 {
            return Err(DeError::new(format!(
                "expected 2-tuple, got {} elements",
                items.len()
            )));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

/// Maps serialize as arrays of `[key, value]` pairs in key order, so
/// output stays deterministic even for `HashMap`.
fn map_to_value<'m, K, V>(entries: impl Iterator<Item = (&'m K, &'m V)>) -> Value
where
    K: Serialize + Ord + 'm,
    V: Serialize + 'm,
{
    let mut pairs: Vec<(&K, &V)> = entries.collect();
    pairs.sort_by(|a, b| a.0.cmp(b.0));
    Value::Array(
        pairs
            .into_iter()
            .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
            .collect(),
    )
}

impl<K: Serialize + Ord + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord + Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<(K, V)>::from_value(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<(K, V)>::from_value(v).map(|pairs| pairs.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
    }

    #[test]
    fn narrowing_is_checked() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn derive_struct_and_enum_roundtrip() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Point {
            x: u32,
            y: f64,
            label: String,
        }

        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Wrap(u64);

        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        enum Shape {
            Empty,
            Dot { at: Point },
            Pair(u32, u32),
            Tag(Wrap),
        }

        let p = Point {
            x: 3,
            y: -0.25,
            label: "a\"b".into(),
        };
        assert_eq!(Point::from_value(&p.to_value()).unwrap(), p);
        assert_eq!(Wrap::from_value(&Wrap(9).to_value()).unwrap(), Wrap(9));
        for s in [
            Shape::Empty,
            Shape::Dot {
                at: Point {
                    x: 1,
                    y: 2.0,
                    label: String::new(),
                },
            },
            Shape::Pair(4, 5),
            Shape::Tag(Wrap(6)),
        ] {
            assert_eq!(Shape::from_value(&s.to_value()).unwrap(), s);
        }
    }
}
