//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait over integer/float ranges and
//! tuples, `prop_map`, weighted [`prop_oneof!`], [`collection::vec`],
//! [`any`], and the [`proptest!`] / [`prop_assert!`] macros. Cases are
//! generated from a deterministic per-test seed (hashed from the test
//! name), so failures reproduce across runs. There is no shrinking: a
//! failing case reports its case index and message directly.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Re-exports matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, Strategy,
    };
}

/// A failed property case (the `Err` of a generated test body).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test case generator.
#[derive(Debug)]
pub struct TestRunnerRng(StdRng);

impl TestRunnerRng {
    /// Seeds the generator from a test name (FNV-1a hash), so each test
    /// gets a stable, independent stream.
    pub fn for_test(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunnerRng(StdRng::seed_from_u64(hash))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Generates one case for a `proptest!`-expanded test (macro plumbing).
pub fn generate_case<S: Strategy>(strategy: &S, rng: &mut TestRunnerRng) -> S::Value {
    strategy.generate(rng.rng())
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        let unit: f64 = rng.gen();
        self.start + unit * (self.end - self.start)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
    (A, B, C, D, E, F, G, H, I);
    (A, B, C, D, E, F, G, H, I, J);
}

/// Full-domain strategies for simple types (`any::<T>()`).
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// The [`any`] strategy.
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Default for AnyStrategy<T> {
    fn default() -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform strategy over `T`'s full domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Named strategy modules (`prop::bool::ANY` etc.).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use std::marker::PhantomData;

        /// Uniform boolean strategy.
        pub const ANY: crate::AnyStrategy<bool> = crate::AnyStrategy(PhantomData);
    }
}

impl<T> AnyStrategy<T> {
    /// `const`-constructible handle used by `prop::bool::ANY`.
    pub const fn new() -> Self {
        AnyStrategy(PhantomData)
    }
}

/// Weighted union of strategies (the `prop_oneof!` backend).
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total_weight: u64,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<V> Union<V> {
    /// Builds a union; every weight must be positive.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights must sum > 0");
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, strategy) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick must land in an arm")
    }
}

/// Boxes a strategy for use in a [`Union`] (macro plumbing).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `Vec` strategy: each case draws a length in `len`, then that many
    /// elements.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "vec length range must be non-empty");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.len.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Weighted/unweighted strategy union. `W => S` arms pick `S` with
/// probability proportional to `W`; bare arms weigh 1.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::boxed($strategy))),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!($($fmt)+)));
        }
    }};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases; `prop_assert!`
/// failures report the case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunnerRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::generate_case(&($strategy), &mut runner);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property failed at case {case}/{}: {e}", config.cases);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = (0u64..10, 5u32..6, 0.0f64..1.0);
        for _ in 0..200 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 10);
            assert_eq!(b, 5);
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = prop_oneof![
            9 => (0u32..1).prop_map(|_| true),
            1 => (0u32..1).prop_map(|_| false),
        ];
        let hits = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(hits > 800, "weighted arm picked only {hits}/1000");
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = collection::vec(0u64..5, 2..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, multiple params, prop_assert.
        #[test]
        fn macro_works((a, b) in (0u32..10, 10u32..20), flip in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!(b >= 10, "b was {b}");
            prop_assert_eq!(flip, flip);
        }
    }
}
