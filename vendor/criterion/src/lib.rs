//! Offline stand-in for `criterion`.
//!
//! The registry is unreachable in this build environment, so this crate
//! provides the small API surface the workspace's benches use —
//! `Criterion::benchmark_group`, `bench_function`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!` — backed by a simple
//! median-of-batches wall-clock timer. It reports ns/iter to stdout; it
//! does not do statistical analysis, HTML reports, or comparison against
//! saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measuring time per benchmark (split across batches).
const MEASURE_TIME: Duration = Duration::from_millis(300);
/// Batches used for the median.
const BATCHES: usize = 15;

/// Names one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from the parameter's `Display` form.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// The per-iteration timing driver handed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    iters_per_batch: u64,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, first calibrating the per-batch iteration count,
    /// then recording [`BATCHES`] batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: find an iteration count that takes ~1/BATCHES of
        // the measuring time.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= MEASURE_TIME / (BATCHES as u32) || iters > u64::MAX / 2 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.iters_per_batch = iters;
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_secs_f64() * 1e9 / iters as f64);
        }
    }

    fn median_ns(&mut self) -> f64 {
        if self.samples_ns.is_empty() {
            return f64::NAN;
        }
        self.samples_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        self.samples_ns[self.samples_ns.len() / 2]
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's batch count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut bencher = Bencher {
            iters_per_batch: 0,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        let iters = bencher.iters_per_batch;
        println!(
            "{full:<50} {:>14.1} ns/iter  ({iters} iters/batch, median of {BATCHES})",
            bencher.median_ns()
        );
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Reads the benchmark-name filter from the command line (the first
    /// free argument, as `cargo bench -- <filter>` passes it).
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        self.benchmark_group(name.clone()).bench_function(name, f);
        self
    }
}

/// Bundles bench functions into a single runner fn (criterion API).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            iters_per_batch: 0,
            samples_ns: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        let ns = b.median_ns();
        assert!(ns.is_finite() && ns >= 0.0);
        assert!(b.iters_per_batch >= 1);
    }

    #[test]
    fn filter_matches_substrings() {
        let c = Criterion {
            filter: Some("touch".into()),
        };
        assert!(c.matches("group/touch_hit"));
        assert!(!c.matches("group/insert"));
        let open = Criterion { filter: None };
        assert!(open.matches("anything"));
    }
}
